"""Tests for the pluggable HDC compute backends."""

import numpy as np
import pytest

from repro.hdc.backend import (
    BACKEND_NAMES,
    BACKENDS,
    DenseBackend,
    HDCBackend,
    PackedBackend,
    get_backend,
    pack_bipolar,
    packed_words,
    popcount,
    unpack_to_bipolar,
)
from repro.hdc.hypervector import random_bipolar, random_hypervectors
from repro.hdc.operations import normalize_hard, similarity_matrix

DIMENSION = 512


@pytest.fixture
def dense():
    return get_backend("dense")


@pytest.fixture
def packed():
    return get_backend("packed")


class TestRegistry:
    def test_backend_names(self):
        assert set(BACKEND_NAMES) == {"dense", "packed"}

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("dense"), DenseBackend)
        assert isinstance(get_backend("packed"), PackedBackend)

    def test_get_backend_none_is_dense(self):
        assert get_backend(None) is BACKENDS["dense"]

    def test_get_backend_passthrough(self):
        backend = PackedBackend()
        assert get_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_backend("sparse")

    def test_backends_are_hdc_backends(self):
        for backend in BACKENDS.values():
            assert isinstance(backend, HDCBackend)


class TestPacking:
    def test_packed_words(self):
        assert packed_words(64) == 1
        assert packed_words(65) == 2
        assert packed_words(10_000) == 157
        with pytest.raises(ValueError):
            packed_words(0)

    @pytest.mark.parametrize("dimension", [64, 100, 512, 1000])
    def test_roundtrip(self, dimension):
        bipolar = random_hypervectors(5, dimension, rng=0)
        assert np.array_equal(
            unpack_to_bipolar(pack_bipolar(bipolar), dimension), bipolar
        )

    def test_single_vector_shape_preserved(self):
        vector = random_bipolar(DIMENSION, rng=0)
        packed = pack_bipolar(vector)
        assert packed.ndim == 1
        assert packed.shape == (packed_words(DIMENSION),)
        assert np.array_equal(unpack_to_bipolar(packed, DIMENSION), vector)

    def test_padding_bits_are_zero(self):
        # +1 components map to 0-bits, so an all-(+1) vector packs to zeros
        # and the padding of a non-multiple-of-64 dimension stays zero.
        vector = np.ones(70, dtype=np.int8)
        packed = pack_bipolar(vector)
        assert packed.shape == (2,)
        assert packed[0] == 0 and packed[1] == 0

    def test_unpack_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            unpack_to_bipolar(np.zeros(3, dtype=np.uint64), 64)

    def test_popcount(self):
        words = np.array([0, 1, 0xFFFFFFFFFFFFFFFF, 0b1011], dtype=np.uint64)
        assert list(popcount(words)) == [0, 1, 64, 3]


class TestStorage:
    def test_storage_width(self, dense, packed):
        assert dense.storage_width(DIMENSION) == DIMENSION
        assert packed.storage_width(DIMENSION) == DIMENSION // 64

    def test_memory_ratio_is_eightfold(self, dense, packed):
        assert dense.nbytes(100, 1024) == 100 * 1024
        assert packed.nbytes(100, 1024) == 100 * 1024 // 8

    def test_empty(self, dense, packed):
        assert dense.empty(0, DIMENSION).shape == (0, DIMENSION)
        assert packed.empty(0, DIMENSION).shape == (0, DIMENSION // 64)
        assert packed.empty(0, DIMENSION).dtype == np.uint64


class TestRandomCorrespondence:
    def test_same_seed_same_vectors_across_backends(self, dense, packed):
        dense_draw = dense.random(4, DIMENSION, rng=7)
        packed_draw = packed.random(4, DIMENSION, rng=7)
        assert np.array_equal(packed_draw, pack_bipolar(dense_draw))

    def test_random_one_correspondence(self, dense, packed):
        assert np.array_equal(
            packed.random_one(DIMENSION, rng=3),
            pack_bipolar(dense.random_one(DIMENSION, rng=3)),
        )

    def test_dense_random_matches_seed_functions(self, dense):
        assert np.array_equal(
            dense.random(3, DIMENSION, rng=5),
            random_hypervectors(3, DIMENSION, rng=5),
        )
        assert np.array_equal(
            dense.random_one(DIMENSION, rng=5), random_bipolar(DIMENSION, rng=5)
        )


class TestOperations:
    def test_bind_equivalence(self, dense, packed):
        a = random_hypervectors(6, DIMENSION, rng=0)
        b = random_hypervectors(6, DIMENSION, rng=1)
        dense_bound = dense.bind(a, b)
        packed_bound = packed.bind(pack_bipolar(a), pack_bipolar(b))
        assert np.array_equal(packed_bound, pack_bipolar(dense_bound))

    def test_packed_bind_is_self_inverse(self, packed):
        a = packed.random(1, DIMENSION, rng=0)
        b = packed.random(1, DIMENSION, rng=1)
        assert np.array_equal(packed.bind(packed.bind(a, b), b), a)

    def test_bind_shape_mismatch_rejected(self, dense, packed):
        with pytest.raises(ValueError):
            dense.bind(np.ones(4, dtype=np.int8), np.ones(5, dtype=np.int8))
        with pytest.raises(ValueError):
            packed.bind(np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64))

    def test_accumulate_equivalence(self, dense, packed):
        matrix = random_hypervectors(9, DIMENSION, rng=0)
        assert np.array_equal(
            packed.accumulate(pack_bipolar(matrix), DIMENSION),
            dense.accumulate(matrix, DIMENSION),
        )

    def test_accumulate_empty(self, dense, packed):
        assert np.array_equal(
            dense.accumulate(dense.empty(0, DIMENSION), DIMENSION),
            np.zeros(DIMENSION, dtype=np.int64),
        )
        assert np.array_equal(
            packed.accumulate(packed.empty(0, DIMENSION), DIMENSION),
            np.zeros(DIMENSION, dtype=np.int64),
        )

    @pytest.mark.parametrize("rows", [1, 2, 3, 11, 64, 100])
    def test_accumulate_carry_save_tree(self, packed, rows):
        # Row counts around powers of two exercise every shape of the
        # pairwise carry-save tree (exact levels, leftover chains, growth of
        # the bit-sliced plane count).
        matrix = random_hypervectors(rows, DIMENSION, rng=2)
        assert np.array_equal(
            packed.accumulate(pack_bipolar(matrix), DIMENSION),
            matrix.astype(np.int64).sum(axis=0),
        )

    def test_normalize_equivalence_with_tie_breaker(self, dense, packed):
        accumulator = random_hypervectors(4, DIMENSION, rng=0).astype(np.int64).sum(axis=0)
        tie_breaker = random_bipolar(DIMENSION, rng=9)
        dense_normalized = dense.normalize(accumulator, tie_breaker=tie_breaker)
        packed_normalized = packed.normalize(accumulator, tie_breaker=tie_breaker)
        assert np.array_equal(packed_normalized, pack_bipolar(dense_normalized))
        assert np.array_equal(dense_normalized, normalize_hard(accumulator, tie_breaker=tie_breaker))

    def test_permute_equivalence(self, dense, packed):
        vector = random_bipolar(DIMENSION, rng=0)
        for shifts in (1, -3, 70):
            assert np.array_equal(
                packed.permute(pack_bipolar(vector), DIMENSION, shifts),
                pack_bipolar(dense.permute(vector, DIMENSION, shifts)),
            )

    def test_bundle_equivalence(self, dense, packed):
        matrix = random_hypervectors(5, DIMENSION, rng=0)
        tie_breaker = random_bipolar(DIMENSION, rng=1)
        assert np.array_equal(
            packed.bundle(pack_bipolar(matrix), DIMENSION, tie_breaker=tie_breaker),
            pack_bipolar(dense.bundle(matrix, DIMENSION, tie_breaker=tie_breaker)),
        )


class TestSimilarity:
    def test_dense_delegates_to_operations(self, dense):
        queries = random_hypervectors(3, DIMENSION, rng=0)
        references = random_hypervectors(4, DIMENSION, rng=1)
        for metric in ("cosine", "hamming", "dot"):
            assert np.array_equal(
                dense.similarity_matrix(queries, references, DIMENSION, metric=metric),
                similarity_matrix(queries, references, metric=metric),
            )

    @pytest.mark.parametrize("metric", ["cosine", "hamming", "dot"])
    def test_packed_matches_dense_exactly_on_bipolar(self, dense, packed, metric):
        # Bipolar vectors all have norm sqrt(d), so the popcount remappings
        # are exact, not just rank-preserving.
        queries = random_hypervectors(5, DIMENSION, rng=0)
        references = random_hypervectors(7, DIMENSION, rng=1)
        dense_scores = dense.similarity_matrix(queries, references, DIMENSION, metric=metric)
        packed_scores = packed.similarity_matrix(
            pack_bipolar(queries), pack_bipolar(references), DIMENSION, metric=metric
        )
        assert np.allclose(dense_scores, packed_scores)

    def test_packed_identical_vectors(self, packed):
        vector = pack_bipolar(random_bipolar(DIMENSION, rng=0))
        scores = packed.similarity_matrix(vector[None, :], vector[None, :], DIMENSION)
        assert scores.shape == (1, 1)
        assert scores[0, 0] == pytest.approx(1.0)

    def test_packed_blocked_query_path(self, packed):
        small = PackedBackend()
        small.SIMILARITY_BLOCK_ROWS = 2
        queries = pack_bipolar(random_hypervectors(5, DIMENSION, rng=0))
        references = pack_bipolar(random_hypervectors(3, DIMENSION, rng=1))
        assert np.allclose(
            small.similarity_matrix(queries, references, DIMENSION),
            packed.similarity_matrix(queries, references, DIMENSION),
        )

    def test_packed_unknown_metric_rejected(self, packed):
        vectors = packed.random(2, DIMENSION, rng=0)
        with pytest.raises(ValueError):
            packed.similarity_matrix(vectors, vectors, DIMENSION, metric="euclidean")

    def test_packed_word_mismatch_rejected(self, packed):
        with pytest.raises(ValueError):
            packed.hamming_distances(
                np.zeros((1, 2), dtype=np.uint64), np.zeros((1, 3), dtype=np.uint64)
            )


class TestSegmentAccumulate:
    @pytest.fixture
    def batch(self):
        rng = np.random.default_rng(11)
        matrix = random_hypervectors(20, 96, rng=rng)
        segment_ids = np.sort(rng.integers(0, 5, size=20))
        return matrix, segment_ids

    def expected(self, matrix, segment_ids, num_segments):
        out = np.zeros((num_segments, matrix.shape[1]), dtype=np.int64)
        for row, segment in zip(matrix, segment_ids):
            out[segment] += row.astype(np.int64)
        return out

    def test_dense_matches_per_segment_sums(self, dense, batch):
        matrix, ids = batch
        result = dense.segment_accumulate(matrix, ids, 5, 96)
        assert np.array_equal(result, self.expected(matrix, ids, 5))

    def test_packed_matches_dense(self, dense, packed, batch):
        matrix, ids = batch
        expected = dense.segment_accumulate(matrix, ids, 5, 96)
        packed_result = packed.segment_accumulate(pack_bipolar(matrix), ids, 5, 96)
        assert np.array_equal(packed_result, expected)

    def test_unsorted_ids_supported(self, dense, batch):
        matrix, ids = batch
        order = np.random.default_rng(3).permutation(len(ids))
        shuffled = dense.segment_accumulate(matrix[order], ids[order], 5, 96)
        assert np.array_equal(shuffled, self.expected(matrix, ids, 5))

    def test_empty_segments_stay_zero(self, dense):
        matrix = random_hypervectors(4, 32, rng=0)
        ids = np.array([1, 1, 3, 3])
        result = dense.segment_accumulate(matrix, ids, 6, 32)
        for empty in (0, 2, 4, 5):
            assert not result[empty].any()

    def test_no_rows(self, dense, packed):
        for backend in (dense, packed):
            result = backend.segment_accumulate(
                backend.empty(0, 64), np.empty(0, dtype=np.int64), 3, 64
            )
            assert result.shape == (3, 64)
            assert not result.any()

    def test_packed_mixed_segment_sizes(self, packed):
        # Runs of very different lengths exercise the paired-run carry-save
        # reduction: long runs keep merging while exhausted singles ride
        # along with zero-padded planes.
        matrix = random_hypervectors(50, 70, rng=5)
        ids = np.sort(np.random.default_rng(5).integers(0, 4, size=50))
        result = packed.segment_accumulate(pack_bipolar(matrix), ids, 4, 70)
        expected = np.zeros((4, 70), dtype=np.int64)
        for row, segment in zip(matrix, ids):
            expected[segment] += row.astype(np.int64)
        assert np.array_equal(result, expected)

    def test_out_of_range_ids_rejected(self, dense):
        matrix = random_hypervectors(2, 16, rng=0)
        with pytest.raises(ValueError):
            dense.segment_accumulate(matrix, np.array([0, 5]), 3, 16)

    def test_mismatched_ids_rejected(self, dense):
        matrix = random_hypervectors(3, 16, rng=0)
        with pytest.raises(ValueError):
            dense.segment_accumulate(matrix, np.array([0, 1]), 3, 16)


class TestPopcount:
    def test_implementations_agree(self):
        from repro.hdc.backend import POPCOUNT_IMPLEMENTATION, popcount_lut

        rng = np.random.default_rng(11)
        words = rng.integers(0, 2**64, size=(5, 9), dtype=np.uint64)
        expected = np.array(
            [[bin(int(word)).count("1") for word in row] for row in words]
        )
        assert np.array_equal(popcount_lut(words).astype(np.int64), expected)
        assert np.array_equal(popcount(words).astype(np.int64), expected)
        assert POPCOUNT_IMPLEMENTATION in {"numpy.bitwise_count", "byte-lut"}

    def test_native_popcount_preferred_when_available(self):
        from repro.hdc.backend import POPCOUNT_IMPLEMENTATION

        if hasattr(np, "bitwise_count"):
            assert POPCOUNT_IMPLEMENTATION == "numpy.bitwise_count"
        else:
            assert POPCOUNT_IMPLEMENTATION == "byte-lut"


class TestHammingScratch:
    def test_distances_unaffected_by_block_reuse(self, packed):
        # Queries spanning several similarity blocks exercise the reused XOR
        # scratch buffer, including the final partial block.
        queries = random_hypervectors(packed.SIMILARITY_BLOCK_ROWS * 2 + 7, 130, rng=3)
        references = random_hypervectors(5, 130, rng=4)
        distances = packed.hamming_distances(
            pack_bipolar(queries), pack_bipolar(references)
        )
        expected = (queries[:, None, :] != references[None, :, :]).sum(axis=2)
        assert np.array_equal(distances, expected)
