"""Tests for hypervector creation and conversion."""

import numpy as np
import pytest

from repro.hdc.hypervector import (
    DEFAULT_DIMENSION,
    ensure_matrix,
    expected_orthogonality_bound,
    random_binary,
    random_bipolar,
    random_hypervectors,
    to_binary,
    to_bipolar,
)


class TestRandomBipolar:
    def test_values_are_plus_minus_one(self):
        hv = random_bipolar(512, rng=0)
        assert set(np.unique(hv)) <= {-1, 1}

    def test_default_dimension_matches_paper(self):
        assert DEFAULT_DIMENSION == 10_000
        assert random_bipolar(rng=0).shape == (10_000,)

    def test_reproducible_with_seed(self):
        assert np.array_equal(random_bipolar(256, rng=42), random_bipolar(256, rng=42))

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            random_bipolar(256, rng=1), random_bipolar(256, rng=2)
        )

    def test_roughly_balanced(self):
        hv = random_bipolar(10_000, rng=0)
        assert abs(int(hv.sum())) < 500

    def test_rejects_non_positive_dimension(self):
        with pytest.raises(ValueError):
            random_bipolar(0)
        with pytest.raises(ValueError):
            random_bipolar(-5)

    def test_accepts_generator_instance(self):
        generator = np.random.default_rng(3)
        first = random_bipolar(128, rng=generator)
        second = random_bipolar(128, rng=generator)
        assert not np.array_equal(first, second)


class TestRandomBinary:
    def test_values_are_zero_one(self):
        hv = random_binary(512, rng=0)
        assert set(np.unique(hv)) <= {0, 1}

    def test_rejects_non_positive_dimension(self):
        with pytest.raises(ValueError):
            random_binary(0)

    def test_roughly_balanced(self):
        hv = random_binary(10_000, rng=0)
        assert 4500 < int(hv.sum()) < 5500


class TestRandomHypervectors:
    def test_shape(self):
        matrix = random_hypervectors(5, 300, rng=0)
        assert matrix.shape == (5, 300)

    def test_binary_kind(self):
        matrix = random_hypervectors(4, 200, kind="binary", rng=0)
        assert set(np.unique(matrix)) <= {0, 1}

    def test_bipolar_kind(self):
        matrix = random_hypervectors(4, 200, kind="bipolar", rng=0)
        assert set(np.unique(matrix)) <= {-1, 1}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            random_hypervectors(2, 100, kind="ternary")

    def test_zero_count_allowed(self):
        matrix = random_hypervectors(0, 100)
        assert matrix.shape == (0, 100)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            random_hypervectors(-1, 100)

    def test_rows_are_independent(self):
        matrix = random_hypervectors(2, 2000, rng=0)
        agreement = np.mean(matrix[0] == matrix[1])
        assert 0.4 < agreement < 0.6


class TestConversions:
    def test_bipolar_to_binary_roundtrip(self):
        bipolar = random_bipolar(300, rng=0)
        assert np.array_equal(to_bipolar(to_binary(bipolar)), bipolar)

    def test_binary_to_bipolar_roundtrip(self):
        binary = random_binary(300, rng=0)
        assert np.array_equal(to_binary(to_bipolar(binary)), binary)

    def test_to_binary_idempotent(self):
        binary = random_binary(300, rng=0)
        assert np.array_equal(to_binary(binary), binary)

    def test_to_bipolar_idempotent(self):
        bipolar = random_bipolar(300, rng=0)
        assert np.array_equal(to_bipolar(bipolar), bipolar)

    def test_empty_arrays(self):
        empty = np.array([], dtype=np.int8)
        assert to_binary(empty).size == 0
        assert to_bipolar(empty).size == 0


class TestEnsureMatrix:
    def test_stacks_list(self):
        vectors = [random_bipolar(64, rng=i) for i in range(3)]
        matrix = ensure_matrix(vectors)
        assert matrix.shape == (3, 64)

    def test_passes_through_matrix(self):
        matrix = random_hypervectors(3, 64, rng=0)
        assert ensure_matrix(matrix) is matrix

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            ensure_matrix([])


class TestOrthogonalityBound:
    def test_decreases_with_dimension(self):
        assert expected_orthogonality_bound(10_000) < expected_orthogonality_bound(100)

    def test_positive(self):
        assert expected_orthogonality_bound(1000) > 0

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            expected_orthogonality_bound(0)
