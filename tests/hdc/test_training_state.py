"""Tests for the mergeable TrainingState value object."""

import numpy as np
import pytest

from repro.hdc.associative_memory import AssociativeMemory
from repro.hdc.backend import get_backend, pack_bipolar
from repro.hdc.hypervector import random_hypervectors
from repro.hdc.training_state import (
    MergeError,
    TrainingState,
    label_class_indices,
    merge_states,
)

DIMENSION = 256


def make_state(seed, labels, *, backend="dense", context=None):
    """A state accumulated from deterministic random encodings."""
    matrix = random_hypervectors(len(labels), DIMENSION, rng=seed)
    if get_backend(backend).is_component_space:
        encodings = matrix
    else:
        encodings = pack_bipolar(matrix)
    state = TrainingState(DIMENSION, backend=backend, context=context)
    state.add_encodings(encodings, labels)
    return state, matrix


class TestAccumulation:
    def test_add_encodings_matches_per_class_sums(self):
        labels = ["a", "b", "a", "c", "b", "a"]
        state, matrix = make_state(0, labels)
        assert state.classes == ["a", "b", "c"]
        assert state.num_samples == len(labels)
        class_labels, class_ids = label_class_indices(labels)
        for index, label in enumerate(class_labels):
            expected = matrix[class_ids == index].astype(np.int64).sum(axis=0)
            assert np.array_equal(state.accumulator(label), expected)
            assert state.count(label) == int(np.sum(class_ids == index))

    def test_add_encoding_negative_weight_decrements_count(self):
        state = TrainingState(DIMENSION)
        vector = random_hypervectors(1, DIMENSION, rng=1)[0]
        state.add_encoding("a", vector)
        state.add_encoding("a", vector, weight=-1.0)
        assert state.count("a") == 0
        assert np.array_equal(
            state.accumulator("a"), np.zeros(DIMENSION, dtype=np.int64)
        )

    def test_length_mismatch_raises(self):
        state = TrainingState(DIMENSION)
        with pytest.raises(ValueError, match="does not match"):
            state.add_encodings(random_hypervectors(3, DIMENSION, rng=0), ["a", "b"])

    def test_wrong_width_raises(self):
        state = TrainingState(DIMENSION)
        with pytest.raises(ValueError, match="dimension"):
            state.add_encodings(random_hypervectors(2, DIMENSION // 2, rng=0), ["a", "b"])

    def test_accumulator_returns_copy(self):
        state, _ = make_state(0, ["a", "a"])
        state.accumulator("a")[:] = 0
        assert state.accumulator("a").any()

    def test_unknown_label_raises(self):
        state = TrainingState(DIMENSION)
        with pytest.raises(KeyError):
            state.accumulator("missing")


class TestAccumulatorValidation:
    def test_uint64_accumulator_rejected(self):
        state = TrainingState(DIMENSION)
        with pytest.raises(ValueError, match="cast"):
            state.add_accumulator("a", np.ones(DIMENSION, dtype=np.uint64), 1)

    def test_float_accumulator_rejected(self):
        state = TrainingState(DIMENSION)
        with pytest.raises(ValueError, match="cast"):
            state.add_accumulator("a", np.ones(DIMENSION, dtype=np.float64), 1)

    def test_wrong_shape_rejected(self):
        state = TrainingState(DIMENSION)
        with pytest.raises(ValueError, match="shape"):
            state.add_accumulator("a", np.ones(DIMENSION // 2, dtype=np.int64), 1)

    def test_small_integer_dtypes_cast_safely(self):
        state = TrainingState(DIMENSION)
        state.add_accumulator("a", np.ones(DIMENSION, dtype=np.int8), 1)
        state.add_accumulator("a", np.ones(DIMENSION, dtype=np.int32), 1)
        assert state.count("a") == 2
        assert state.accumulator("a").dtype == np.int64

    def test_packed_backend_flags_native_packed_vector(self):
        # A raw packed hypervector handed over as an "accumulator" must get
        # the pointed message, not a generic shape error.
        packed = pack_bipolar(random_hypervectors(1, DIMENSION, rng=0))[0]
        state = TrainingState(DIMENSION, backend="packed")
        with pytest.raises(ValueError, match="packed hypervector"):
            state.add_accumulator("a", packed, 1)


class TestMergeAlgebra:
    def test_merge_is_order_insensitive_on_values(self):
        left, _ = make_state(0, ["a", "b", "a"])
        right, _ = make_state(1, ["b", "c"])
        forward = left.merge(right)
        backward = right.merge(left)
        # Same accumulators and counts either way; only listing order differs.
        assert forward.classes == ["a", "b", "c"]
        assert backward.classes == ["b", "c", "a"]
        for label in forward.classes:
            assert np.array_equal(
                forward.accumulator(label), backward.accumulator(label)
            )
            assert forward.count(label) == backward.count(label)

    def test_merge_is_associative(self):
        a, _ = make_state(0, ["x", "y"])
        b, _ = make_state(1, ["y", "z"])
        c, _ = make_state(2, ["z", "x"])
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_merge_equals_joint_accumulation(self):
        labels = ["a", "b", "a", "c", "b", "a", "c", "b"]
        matrix = random_hypervectors(len(labels), DIMENSION, rng=3)
        joint = TrainingState(DIMENSION).add_encodings(matrix, labels)
        left = TrainingState(DIMENSION).add_encodings(matrix[:3], labels[:3])
        right = TrainingState(DIMENSION).add_encodings(matrix[3:], labels[3:])
        assert left.merge(right) == joint

    def test_merge_does_not_mutate_operands(self):
        left, _ = make_state(0, ["a"])
        right, _ = make_state(1, ["a"])
        before = left.accumulator("a")
        left.merge(right)
        assert np.array_equal(left.accumulator("a"), before)
        assert left.count("a") == 1

    def test_merge_update_is_in_place(self):
        left, _ = make_state(0, ["a"])
        right, _ = make_state(1, ["a", "b"])
        result = left.merge_update(right)
        assert result is left
        assert left.classes == ["a", "b"]
        assert left.count("a") == 2

    def test_merge_states_folds_in_order(self):
        states = [make_state(seed, ["a", "b"])[0] for seed in range(4)]
        merged = merge_states(states)
        assert merged.num_samples == 8
        expected = states[0].merge(states[1]).merge(states[2]).merge(states[3])
        assert merged == expected

    def test_merge_states_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            merge_states([])


class TestMergeCompatibility:
    def test_dimension_mismatch(self):
        left = TrainingState(DIMENSION)
        right = TrainingState(DIMENSION * 2)
        with pytest.raises(MergeError, match="dimension mismatch"):
            left.merge(right)

    def test_backend_mismatch(self):
        left = TrainingState(DIMENSION, backend="dense")
        right = TrainingState(DIMENSION, backend="packed")
        with pytest.raises(MergeError, match="backend mismatch"):
            left.merge(right)

    def test_context_mismatch(self):
        left = TrainingState(DIMENSION, context={"config": {"seed": 0}})
        right = TrainingState(DIMENSION, context={"config": {"seed": 1}})
        with pytest.raises(MergeError, match="context mismatch"):
            left.merge(right)

    def test_non_state_operand(self):
        with pytest.raises(MergeError, match="TrainingState"):
            TrainingState(DIMENSION).merge("not a state")

    def test_none_context_is_wildcard_and_adopted(self):
        context = {"encoder": "GraphHDEncoder", "config": {"seed": 0}}
        left = TrainingState(DIMENSION)
        right = TrainingState(DIMENSION, context=context)
        merged = left.merge(right)
        assert merged.context == context
        # ... and merging the other way keeps the stamped context too.
        assert right.merge(left).context == context


class TestEqualityAndCopy:
    def test_copy_is_independent(self):
        state, _ = make_state(0, ["a", "b"])
        duplicate = state.copy()
        assert duplicate == state
        duplicate.add_encoding("a", random_hypervectors(1, DIMENSION, rng=9)[0])
        assert duplicate != state

    def test_eq_checks_class_order(self):
        left, _ = make_state(0, ["a", "b"])
        right = TrainingState(DIMENSION)
        # Same content, reversed insertion order.
        for label in reversed(left.classes):
            right.add_accumulator(label, left.accumulator(label), left.count(label))
        assert left != right


class TestPersistence:
    def test_roundtrip_preserves_everything(self, tmp_path):
        context = {"encoder": "GraphHDEncoder", "config": {"seed": 7}}
        state, _ = make_state(0, ["a", "b", "a"], context=context)
        path = tmp_path / "state.npz"
        state.save(path)
        assert TrainingState.load(path) == state

    def test_roundtrip_tuple_labels(self, tmp_path):
        # Composite (label, cluster) keys used by the multi-centroid extension
        # must survive the object-array trip without broadcasting.
        state = TrainingState(DIMENSION)
        state.add_accumulator(("a", 0), np.ones(DIMENSION, dtype=np.int64), 2)
        state.add_accumulator(("a", 1), np.ones(DIMENSION, dtype=np.int64), 1)
        path = tmp_path / "state.npz"
        state.save(path)
        loaded = TrainingState.load(path)
        assert loaded.classes == [("a", 0), ("a", 1)]
        assert loaded == state

    def test_roundtrip_empty_state(self, tmp_path):
        state = TrainingState(DIMENSION, backend="packed")
        path = tmp_path / "state.npz"
        state.save(path)
        loaded = TrainingState.load(path)
        assert loaded == state
        assert loaded.classes == []

    def test_load_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, payload=np.arange(3))
        with pytest.raises(ValueError, match="not a TrainingState archive"):
            TrainingState.load(path)

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "model-ish.npz"
        np.savez(path, format_version=np.int64(1), kind="graphhd_model")
        with pytest.raises(ValueError, match="GraphHDClassifier.load"):
            TrainingState.load(path)

    def test_load_rejects_newer_version(self, tmp_path):
        state, _ = make_state(0, ["a"])
        path = tmp_path / "state.npz"
        state.save(path)
        with np.load(path, allow_pickle=True) as data:
            payload = dict(data)
        payload["format_version"] = np.int64(999)
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="found 999, expected 1"):
            TrainingState.load(path)


class TestFinalize:
    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_finalize_builds_queryable_memory(self, backend):
        labels = [0, 1] * 8
        state, matrix = make_state(5, labels, backend=backend)
        memory = state.finalize()
        assert isinstance(memory, AssociativeMemory)
        assert memory.classes == [0, 1]
        queries = matrix if backend == "dense" else pack_bipolar(matrix)
        # Class vectors dominate their own training samples.
        predictions = memory.query_many(queries)
        assert predictions == labels

    def test_finalize_is_a_snapshot(self):
        state, _ = make_state(0, ["a", "b"])
        memory = state.finalize()
        state.add_encoding("a", random_hypervectors(1, DIMENSION, rng=2)[0])
        assert memory.count("a") == state.count("a") - 1
