"""Tests for item memories (random, level, circular)."""

import numpy as np
import pytest

from repro.hdc.hypervector import expected_orthogonality_bound
from repro.hdc.item_memory import CircularItemMemory, ItemMemory, LevelItemMemory
from repro.hdc.operations import cosine_similarity

DIMENSION = 2048


class TestItemMemory:
    def test_same_key_same_vector(self):
        memory = ItemMemory(DIMENSION, seed=0)
        assert np.array_equal(memory.get("a"), memory.get("a"))

    def test_different_keys_quasi_orthogonal(self):
        memory = ItemMemory(DIMENSION, seed=0)
        similarity = cosine_similarity(memory.get("a"), memory.get("b"))
        assert abs(similarity) < expected_orthogonality_bound(DIMENSION)

    def test_len_and_contains(self):
        memory = ItemMemory(128, seed=0)
        assert len(memory) == 0
        memory.get(1)
        memory.get(2)
        assert len(memory) == 2
        assert 1 in memory
        assert 3 not in memory

    def test_getitem_alias(self):
        memory = ItemMemory(128, seed=0)
        assert np.array_equal(memory["x"], memory.get("x"))

    def test_get_many_shape(self):
        memory = ItemMemory(128, seed=0)
        matrix = memory.get_many([0, 1, 2, 1])
        assert matrix.shape == (4, 128)
        assert np.array_equal(matrix[1], matrix[3])

    def test_get_many_empty(self):
        memory = ItemMemory(128, seed=0)
        assert memory.get_many([]).shape == (0, 128)

    def test_get_many_order_independent(self):
        first = ItemMemory(256, seed=5)
        second = ItemMemory(256, seed=5)
        first.get_many([3, 1, 2])
        second.get_many([1, 2, 3])
        for key in (1, 2, 3):
            assert np.array_equal(first.get(key), second.get(key))

    def test_reproducible_with_seed(self):
        first = ItemMemory(256, seed=9)
        second = ItemMemory(256, seed=9)
        assert np.array_equal(first.get("token"), second.get("token"))

    def test_as_dict_snapshot(self):
        memory = ItemMemory(64, seed=0)
        memory.get("a")
        snapshot = memory.as_dict()
        assert set(snapshot) == {"a"}

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            ItemMemory(0)

    def test_mixed_unsortable_keys(self):
        memory = ItemMemory(64, seed=0)
        matrix = memory.get_many(["a", 1, ("t", 2)])
        assert matrix.shape == (3, 64)


class TestLevelItemMemory:
    def test_endpoints_quasi_orthogonal(self):
        memory = LevelItemMemory(16, DIMENSION, seed=0)
        similarity = cosine_similarity(memory.get(0), memory.get(15))
        assert abs(similarity) < 0.15

    def test_neighbours_highly_similar(self):
        memory = LevelItemMemory(16, DIMENSION, seed=0)
        assert cosine_similarity(memory.get(7), memory.get(8)) > 0.8

    def test_similarity_monotonically_decreases(self):
        memory = LevelItemMemory(10, DIMENSION, seed=0)
        base = memory.get(0)
        similarities = [cosine_similarity(base, memory.get(level)) for level in range(10)]
        assert all(
            earlier >= later - 0.05
            for earlier, later in zip(similarities, similarities[1:])
        )

    def test_out_of_range_level(self):
        memory = LevelItemMemory(4, 128, seed=0)
        with pytest.raises(IndexError):
            memory.get(4)
        with pytest.raises(IndexError):
            memory.get(-1)

    def test_get_value_quantization(self):
        memory = LevelItemMemory(5, 256, seed=0)
        assert np.array_equal(memory.get_value(0.0, 0.0, 1.0), memory.get(0))
        assert np.array_equal(memory.get_value(1.0, 0.0, 1.0), memory.get(4))
        assert np.array_equal(memory.get_value(0.5, 0.0, 1.0), memory.get(2))

    def test_get_value_clips_out_of_range(self):
        memory = LevelItemMemory(5, 256, seed=0)
        assert np.array_equal(memory.get_value(-3.0, 0.0, 1.0), memory.get(0))
        assert np.array_equal(memory.get_value(7.0, 0.0, 1.0), memory.get(4))

    def test_get_value_invalid_range(self):
        memory = LevelItemMemory(5, 256, seed=0)
        with pytest.raises(ValueError):
            memory.get_value(0.5, 1.0, 0.0)

    def test_requires_two_levels(self):
        with pytest.raises(ValueError):
            LevelItemMemory(1, 128)

    def test_all_vectors_shape(self):
        memory = LevelItemMemory(6, 100, seed=0)
        assert memory.all_vectors().shape == (6, 100)
        assert len(memory) == 6


class TestCircularItemMemory:
    def test_wraps_around(self):
        memory = CircularItemMemory(8, DIMENSION, seed=0)
        assert np.array_equal(memory.get(8), memory.get(0))
        assert np.array_equal(memory.get(-1), memory.get(7))

    def test_opposite_levels_maximally_dissimilar(self):
        memory = CircularItemMemory(8, DIMENSION, seed=0)
        opposite = cosine_similarity(memory.get(0), memory.get(4))
        adjacent = cosine_similarity(memory.get(0), memory.get(1))
        assert opposite < adjacent
        assert opposite < 0.0

    def test_similarity_decreases_with_circular_distance(self):
        memory = CircularItemMemory(8, DIMENSION, seed=0)
        base = memory.get(0)
        similarities = [
            cosine_similarity(base, memory.get(level)) for level in range(5)
        ]
        assert all(
            earlier > later for earlier, later in zip(similarities, similarities[1:])
        )

    def test_similarity_wraps_around(self):
        memory = CircularItemMemory(8, DIMENSION, seed=0)
        base = memory.get(0)
        forward = cosine_similarity(base, memory.get(1))
        backward = cosine_similarity(base, memory.get(7))
        assert forward == pytest.approx(backward, abs=0.1)
        assert backward > cosine_similarity(base, memory.get(4))

    def test_requires_two_levels(self):
        with pytest.raises(ValueError):
            CircularItemMemory(1, 128)

    def test_all_vectors_shape(self):
        memory = CircularItemMemory(5, 100, seed=0)
        assert memory.all_vectors().shape == (5, 100)
        assert len(memory) == 5


class TestItemMemoryContiguousMatrix:
    def test_matrix_rows_follow_materialization_order(self):
        memory = ItemMemory(64, seed=0)
        for key in ("a", "b", "c"):
            memory.get(key)
        matrix = memory.matrix
        assert matrix.shape == (3, 64)
        for row, key in enumerate(("a", "b", "c")):
            assert np.array_equal(matrix[row], memory.get(key))

    def test_matrix_view_is_read_only(self):
        memory = ItemMemory(64, seed=0)
        memory.get("a")
        with pytest.raises(ValueError):
            memory.matrix[0, 0] = 1

    def test_indices_for_returns_stable_rows(self):
        memory = ItemMemory(64, seed=0)
        indices = memory.indices_for([2, 0, 1, 0])
        assert indices.dtype == np.int64
        assert len(indices) == 4
        # Unseen keys materialize in sorted order: key k -> row k here.
        assert list(indices) == [2, 0, 1, 0]
        assert list(memory.indices_for([0, 1, 2])) == [0, 1, 2]

    def test_get_many_equals_matrix_gather(self):
        memory = ItemMemory(32, seed=3)
        keys = [5, 1, 3, 1, 5]
        stacked = memory.get_many(keys)
        assert np.array_equal(stacked, memory.matrix[memory.indices_for(keys)])

    def test_growth_preserves_existing_entries(self):
        memory = ItemMemory(16, seed=1)
        first = memory.get(0).copy()
        for key in range(100):  # force several capacity doublings
            memory.get(key)
        assert np.array_equal(memory.get(0), first)
        assert memory.matrix.shape == (100, 16)

    def test_set_overwrites_and_appends(self):
        memory = ItemMemory(8, seed=0)
        vector = np.ones(8, dtype=np.int8)
        memory.set("fresh", vector)
        assert np.array_equal(memory.get("fresh"), vector)
        memory.set("fresh", -vector)
        assert np.array_equal(memory.get("fresh"), -vector)
        with pytest.raises(ValueError):
            memory.set("bad", np.ones(5, dtype=np.int8))

    def test_as_dict_returns_copies(self):
        memory = ItemMemory(8, seed=0)
        memory.get("a")
        snapshot = memory.as_dict()
        snapshot["a"][:] = 0
        assert not np.array_equal(memory.get("a"), snapshot["a"])
