"""Tests for the generic HDC encoders."""

import numpy as np
import pytest

from repro.hdc.encoders import NGramEncoder, RecordEncoder, SequenceEncoder
from repro.hdc.operations import cosine_similarity

DIMENSION = 2048


class TestRecordEncoder:
    def test_encoding_is_bipolar(self):
        encoder = RecordEncoder(DIMENSION, seed=0)
        hv = encoder.encode({"a": 1.0, "b": 0.0})
        assert set(np.unique(hv)) <= {-1, 1}
        assert hv.shape == (DIMENSION,)

    def test_identical_records_encode_identically(self):
        encoder = RecordEncoder(DIMENSION, seed=0)
        record = {"x": 0.3, "y": "red", "z": 0.9}
        assert np.array_equal(encoder.encode(record), encoder.encode(record))

    def test_similar_records_are_similar(self):
        encoder = RecordEncoder(DIMENSION, seed=0)
        base = {"a": 0.5, "b": 0.5, "c": 0.5}
        near = {"a": 0.5, "b": 0.5, "c": 0.55}
        far = {"a": 0.0, "b": 1.0, "c": 0.1}
        similarity_near = cosine_similarity(encoder.encode(base), encoder.encode(near))
        similarity_far = cosine_similarity(encoder.encode(base), encoder.encode(far))
        assert similarity_near > similarity_far

    def test_categorical_values_supported(self):
        encoder = RecordEncoder(DIMENSION, seed=0)
        first = encoder.encode({"colour": "red"})
        second = encoder.encode({"colour": "blue"})
        assert abs(cosine_similarity(first, second)) < 0.2

    def test_unrelated_records_quasi_orthogonal(self):
        encoder = RecordEncoder(DIMENSION, seed=0)
        first = encoder.encode({"a": "x"})
        second = encoder.encode({"b": "y"})
        assert abs(cosine_similarity(first, second)) < 0.2

    def test_empty_record_rejected(self):
        encoder = RecordEncoder(DIMENSION, seed=0)
        with pytest.raises(ValueError):
            encoder.encode({})

    def test_unsupported_value_type_rejected(self):
        encoder = RecordEncoder(DIMENSION, seed=0)
        with pytest.raises(TypeError):
            encoder.encode({"a": [1, 2, 3]})

    def test_invalid_numeric_range_rejected(self):
        with pytest.raises(ValueError):
            RecordEncoder(DIMENSION, numeric_range=(1.0, 0.0))

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            RecordEncoder(DIMENSION, numeric_levels=1)

    def test_reproducible_with_seed(self):
        first = RecordEncoder(512, seed=5)
        second = RecordEncoder(512, seed=5)
        record = {"a": 0.2, "b": "c"}
        assert np.array_equal(first.encode(record), second.encode(record))


class TestNGramEncoder:
    def test_encoding_is_bipolar(self):
        encoder = NGramEncoder(3, DIMENSION, seed=0)
        hv = encoder.encode("hyperdimensional")
        assert set(np.unique(hv)) <= {-1, 1}

    def test_same_sequence_same_encoding(self):
        encoder = NGramEncoder(3, DIMENSION, seed=0)
        assert np.array_equal(encoder.encode("graphhd"), encoder.encode("graphhd"))

    def test_similar_strings_more_similar_than_different(self):
        encoder = NGramEncoder(3, DIMENSION, seed=0)
        base = encoder.encode("hyperdimensional computing")
        near = encoder.encode("hyperdimensional computers")
        far = encoder.encode("graph neural network model")
        assert cosine_similarity(base, near) > cosine_similarity(base, far)

    def test_order_matters(self):
        encoder = NGramEncoder(2, DIMENSION, seed=0)
        forward = encoder.encode(["a", "b", "c", "d"])
        backward = encoder.encode(["d", "c", "b", "a"])
        assert cosine_similarity(forward, backward) < 0.9

    def test_ngram_length_validation(self):
        encoder = NGramEncoder(3, DIMENSION, seed=0)
        with pytest.raises(ValueError):
            encoder.encode_ngram(["a", "b"])

    def test_sequence_shorter_than_n_rejected(self):
        encoder = NGramEncoder(4, DIMENSION, seed=0)
        with pytest.raises(ValueError):
            encoder.encode("abc")

    def test_unigram_encoder(self):
        encoder = NGramEncoder(1, DIMENSION, seed=0)
        hv = encoder.encode(["a", "b", "a"])
        assert hv.shape == (DIMENSION,)

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            NGramEncoder(0, DIMENSION)


class TestSequenceEncoder:
    def test_encoding_is_bipolar(self):
        encoder = SequenceEncoder(DIMENSION, seed=0)
        hv = encoder.encode(["a", "b", "c"])
        assert set(np.unique(hv)) <= {-1, 1}

    def test_position_sensitivity(self):
        encoder = SequenceEncoder(DIMENSION, seed=0)
        forward = encoder.encode(["a", "b", "c", "d", "e"])
        reordered = encoder.encode(["b", "c", "d", "e", "a"])
        unrelated = encoder.encode(["v", "w", "x", "y", "z"])
        # Same multiset in a different order is neither identical nor unrelated.
        assert cosine_similarity(forward, reordered) < 0.95
        assert cosine_similarity(forward, reordered) > cosine_similarity(
            forward, unrelated
        )

    def test_identical_sequences_encode_identically(self):
        encoder = SequenceEncoder(DIMENSION, seed=0)
        assert np.array_equal(encoder.encode("abcde"), encoder.encode("abcde"))

    def test_empty_sequence_rejected(self):
        encoder = SequenceEncoder(DIMENSION, seed=0)
        with pytest.raises(ValueError):
            encoder.encode([])

    def test_reproducible_with_seed(self):
        first = SequenceEncoder(512, seed=1)
        second = SequenceEncoder(512, seed=1)
        assert np.array_equal(first.encode("abc"), second.encode("abc"))
