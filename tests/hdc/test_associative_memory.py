"""Tests for the associative (class-vector) memory."""

import numpy as np
import pytest

from repro.hdc.associative_memory import AssociativeMemory
from repro.hdc.hypervector import random_bipolar, random_hypervectors

DIMENSION = 1024


def noisy_copy(hypervector, flip_fraction, rng):
    """Flip a fraction of the components of a bipolar hypervector."""
    noisy = hypervector.copy()
    count = int(len(noisy) * flip_fraction)
    positions = rng.choice(len(noisy), size=count, replace=False)
    noisy[positions] = -noisy[positions]
    return noisy


class TestAssociativeMemory:
    def test_empty_memory_properties(self):
        memory = AssociativeMemory(DIMENSION)
        assert len(memory) == 0
        assert memory.classes == []
        assert "a" not in memory

    def test_add_and_query_exact(self):
        memory = AssociativeMemory(DIMENSION)
        prototypes = {label: random_bipolar(DIMENSION, rng=label) for label in range(3)}
        for label, prototype in prototypes.items():
            memory.add(label, prototype)
        for label, prototype in prototypes.items():
            assert memory.query(prototype) == label

    def test_query_with_noise(self):
        rng = np.random.default_rng(0)
        memory = AssociativeMemory(DIMENSION)
        prototypes = {label: random_bipolar(DIMENSION, rng=label) for label in range(4)}
        for label, prototype in prototypes.items():
            memory.add(label, prototype)
        for label, prototype in prototypes.items():
            corrupted = noisy_copy(prototype, 0.3, rng)
            assert memory.query(corrupted) == label

    def test_add_many_equivalent_to_repeated_add(self):
        vectors = random_hypervectors(5, DIMENSION, rng=0)
        one_by_one = AssociativeMemory(DIMENSION)
        for vector in vectors:
            one_by_one.add("c", vector)
        batched = AssociativeMemory(DIMENSION)
        batched.add_many("c", vectors)
        assert np.array_equal(one_by_one.class_vector("c"), batched.class_vector("c"))
        assert one_by_one.count("c") == batched.count("c") == 5

    def test_negative_weight_subtracts(self):
        memory = AssociativeMemory(DIMENSION)
        vector = random_bipolar(DIMENSION, rng=0)
        memory.add("c", vector)
        memory.add("c", vector, weight=-1.0)
        assert np.all(memory.class_vector("c") == 0)

    def test_class_vector_normalized(self):
        memory = AssociativeMemory(DIMENSION)
        memory.add_many("c", random_hypervectors(7, DIMENSION, rng=0))
        normalized = memory.class_vector("c", normalized=True)
        assert set(np.unique(normalized)) <= {-1, 1}

    def test_unknown_class_vector_raises(self):
        memory = AssociativeMemory(DIMENSION)
        with pytest.raises(KeyError):
            memory.class_vector("missing")

    def test_query_empty_memory_raises(self):
        memory = AssociativeMemory(DIMENSION)
        with pytest.raises(RuntimeError):
            memory.query(random_bipolar(DIMENSION, rng=0))

    def test_wrong_dimension_rejected(self):
        memory = AssociativeMemory(DIMENSION)
        with pytest.raises(ValueError):
            memory.add("c", random_bipolar(DIMENSION // 2, rng=0))
        with pytest.raises(ValueError):
            memory.add_many("c", random_hypervectors(2, DIMENSION // 2, rng=0))

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            AssociativeMemory(0)

    def test_similarities_shape_and_labels(self):
        memory = AssociativeMemory(DIMENSION)
        for label in ("a", "b", "c"):
            memory.add(label, random_bipolar(DIMENSION, rng=hash(label) % 100))
        queries = random_hypervectors(4, DIMENSION, rng=1)
        scores, labels = memory.similarities(queries)
        assert scores.shape == (4, 3)
        assert labels == ["a", "b", "c"]

    def test_query_many(self):
        memory = AssociativeMemory(DIMENSION)
        prototypes = {label: random_bipolar(DIMENSION, rng=label) for label in range(3)}
        for label, prototype in prototypes.items():
            memory.add(label, prototype)
        queries = [prototypes[2], prototypes[0], prototypes[1]]
        assert memory.query_many(queries) == [2, 0, 1]

    def test_hamming_metric(self):
        memory = AssociativeMemory(DIMENSION, metric="hamming", normalize_queries=True)
        prototypes = {label: random_bipolar(DIMENSION, rng=label) for label in range(2)}
        for label, prototype in prototypes.items():
            memory.add(label, prototype)
        assert memory.query(prototypes[1]) == 1

    def test_bundled_class_vector_closer_to_members(self):
        rng = np.random.default_rng(3)
        memory = AssociativeMemory(DIMENSION)
        prototype = random_bipolar(DIMENSION, rng=10)
        members = [noisy_copy(prototype, 0.2, rng) for _ in range(10)]
        memory.add_many("class", members)
        other = random_bipolar(DIMENSION, rng=20)
        memory.add("other", other)
        for member in members:
            assert memory.query(member) == "class"


class TestIntegerEncodings:
    def test_add_preserves_wide_integer_components(self):
        # Un-normalized integer encodings (normalize_graph_hypervectors=False)
        # can exceed the int8 range; add() must not clamp or wrap them.
        memory = AssociativeMemory(DIMENSION)
        encoding = np.zeros(DIMENSION, dtype=np.int64)
        encoding[0] = 300
        encoding[1] = -300
        memory.add("wide", encoding)
        stored = memory.class_vector("wide", normalized=False)
        assert stored[0] == 300
        assert stored[1] == -300


class TestStateExchange:
    """export_state / from_state / merge_state — the TrainingState surface."""

    def _trained_memory(self):
        memory = AssociativeMemory(DIMENSION)
        matrix = random_hypervectors(6, DIMENSION, rng=8)
        for row, label in zip(matrix, ["a", "b", "a", "c", "b", "a"]):
            memory.add(label, row)
        return memory

    def test_export_state_is_a_deep_copy(self):
        memory = self._trained_memory()
        state = memory.export_state()
        state.add_encoding("a", random_bipolar(DIMENSION, rng=1))
        assert memory.count("a") == state.count("a") - 1

    def test_from_state_round_trips(self):
        memory = self._trained_memory()
        rebuilt = AssociativeMemory.from_state(memory.export_state())
        assert rebuilt.classes == memory.classes
        for label in memory.classes:
            assert np.array_equal(
                rebuilt._accumulators[label], memory._accumulators[label]
            )
            assert rebuilt.count(label) == memory.count(label)

    def test_merge_state_accumulates(self):
        memory = self._trained_memory()
        other = self._trained_memory()
        expected = {
            label: memory._accumulators[label] * 2 for label in memory.classes
        }
        memory.merge_state(other.export_state())
        for label, accumulator in expected.items():
            assert np.array_equal(memory._accumulators[label], accumulator)
            assert memory.count(label) == 2 * other.count(label)

    def test_merge_state_dimension_mismatch_raises(self):
        from repro.hdc.training_state import MergeError, TrainingState

        memory = self._trained_memory()
        with pytest.raises(MergeError, match="dimension mismatch"):
            memory.merge_state(TrainingState(DIMENSION * 2))


class TestAccumulatorValidation:
    def test_add_accumulator_rejects_unsafe_dtype(self):
        memory = AssociativeMemory(DIMENSION)
        with pytest.raises(ValueError, match="cast"):
            memory.add_accumulator("a", np.ones(DIMENSION, dtype=np.uint64), 1)

    def test_add_accumulator_rejects_wrong_shape(self):
        memory = AssociativeMemory(DIMENSION)
        with pytest.raises(ValueError, match="shape"):
            memory.add_accumulator("a", np.ones(DIMENSION + 1, dtype=np.int64), 1)

    def test_add_accumulator_accepts_safe_casts(self):
        memory = AssociativeMemory(DIMENSION)
        memory.add_accumulator("a", np.ones(DIMENSION, dtype=np.int32), 2)
        assert memory.count("a") == 2
        assert memory._accumulators["a"].dtype == np.int64


class TestReferenceMatrixCache:
    """The memoized read-only reference matrix behind the serving hot path."""

    def _trained(self, backend=None):
        memory = AssociativeMemory(DIMENSION, backend=backend)
        for label in range(3):
            # backend.random yields native-format vectors (dense bipolar or
            # packed words), so the helper works for either backend.
            memory.add_many(label, memory.backend.random(4, DIMENSION, rng=label))
        return memory

    def test_repeated_queries_share_one_matrix(self):
        memory = self._trained()
        first = memory._reference_matrix_native()
        assert memory._reference_matrix_native() is first

    def test_matrix_is_read_only(self):
        memory = self._trained()
        matrix = memory._reference_matrix_native()
        assert matrix.flags.writeable is False
        with pytest.raises(ValueError):
            matrix[0, 0] = 0

    @pytest.mark.parametrize("backend", [None, "packed"])
    def test_cached_matrix_matches_fresh_computation(self, backend):
        memory = self._trained(backend=backend)
        cached = memory._reference_matrix_native()
        fresh = AssociativeMemory.from_state(
            memory.export_state(), metric=memory.metric
        )._reference_matrix_native()
        assert np.array_equal(cached, fresh)

    def test_add_invalidates_cache(self):
        memory = self._trained()
        stale = memory._reference_matrix_native()
        memory.add(0, random_bipolar(DIMENSION, rng=99))
        fresh = memory._reference_matrix_native()
        assert fresh is not stale
        assert not np.array_equal(fresh, stale)

    def test_merge_state_invalidates_cache(self):
        memory = self._trained()
        stale = memory._reference_matrix_native()
        memory.merge_state(self._trained().export_state())
        assert memory._reference_matrix_native() is not stale

    def test_add_accumulator_invalidates_cache(self):
        memory = self._trained()
        stale = memory._reference_matrix_native()
        memory.add_accumulator(7, np.ones(DIMENSION, dtype=np.int64), 1)
        fresh = memory._reference_matrix_native()
        assert fresh.shape[0] == stale.shape[0] + 1

    def test_stale_matrix_stays_valid_for_old_readers(self):
        # An in-flight batch holding the old matrix must not see the update.
        memory = self._trained()
        stale = memory._reference_matrix_native()
        snapshot = stale.copy()
        memory.add(0, random_bipolar(DIMENSION, rng=5))
        memory._reference_matrix_native()
        assert np.array_equal(stale, snapshot)

    def test_query_results_unchanged_by_caching(self):
        memory = self._trained()
        query = random_bipolar(DIMENSION, rng=42)
        first = memory.query(query)
        assert memory.query(query) == first
