"""Tests for the fundamental HDC operations."""

import numpy as np
import pytest

from repro.hdc.hypervector import expected_orthogonality_bound, random_bipolar
from repro.hdc.operations import (
    bind,
    bundle,
    cosine_similarity,
    dot_similarity,
    hamming_similarity,
    normalize_hard,
    permute,
    similarity,
    similarity_matrix,
)

DIMENSION = 2048


@pytest.fixture
def a():
    return random_bipolar(DIMENSION, rng=1)


@pytest.fixture
def b():
    return random_bipolar(DIMENSION, rng=2)


@pytest.fixture
def c():
    return random_bipolar(DIMENSION, rng=3)


class TestBind:
    def test_result_is_bipolar(self, a, b):
        bound = bind(a, b)
        assert set(np.unique(bound)) <= {-1, 1}

    def test_commutative(self, a, b):
        assert np.array_equal(bind(a, b), bind(b, a))

    def test_associative(self, a, b, c):
        assert np.array_equal(bind(bind(a, b), c), bind(a, bind(b, c)))

    def test_self_inverse(self, a, b):
        assert np.array_equal(bind(bind(a, b), b), a)

    def test_result_quasi_orthogonal_to_operands(self, a, b):
        bound = bind(a, b)
        bound_limit = expected_orthogonality_bound(DIMENSION)
        assert abs(cosine_similarity(bound, a)) < bound_limit
        assert abs(cosine_similarity(bound, b)) < bound_limit

    def test_preserves_distance_structure(self, a, b, c):
        # Binding both vectors with the same key preserves their similarity.
        key = random_bipolar(DIMENSION, rng=9)
        original = cosine_similarity(a, b)
        bound = cosine_similarity(bind(a, key), bind(b, key))
        assert original == pytest.approx(bound, abs=1e-12)

    def test_multiple_operands(self, a, b, c):
        assert np.array_equal(bind(a, b, c), bind(bind(a, b), c))

    def test_requires_two_operands(self, a):
        with pytest.raises(ValueError):
            bind(a)

    def test_shape_mismatch_rejected(self, a):
        with pytest.raises(ValueError):
            bind(a, random_bipolar(DIMENSION // 2, rng=0))


class TestBundle:
    def test_majority_vote_of_three(self):
        vectors = np.array(
            [[1, 1, -1, -1], [1, -1, -1, 1], [1, 1, 1, -1]], dtype=np.int8
        )
        bundled = bundle(vectors)
        assert np.array_equal(bundled, np.array([1, 1, -1, -1], dtype=np.int8))

    def test_result_similar_to_inputs(self, a, b, c):
        bundled = bundle([a, b, c])
        for vector in (a, b, c):
            assert cosine_similarity(bundled, vector) > 0.3

    def test_result_dissimilar_to_unrelated(self, a, b, c):
        bundled = bundle([a, b, c])
        unrelated = random_bipolar(DIMENSION, rng=99)
        assert abs(cosine_similarity(bundled, unrelated)) < expected_orthogonality_bound(
            DIMENSION
        )

    def test_unnormalized_returns_integer_sum(self, a, b):
        raw = bundle([a, b], normalize=False)
        assert raw.dtype == np.int64
        assert np.array_equal(raw, a.astype(np.int64) + b.astype(np.int64))

    def test_single_vector_bundle_is_identity(self, a):
        assert np.array_equal(bundle([a]), a)

    def test_tie_breaking_is_random_but_bipolar(self, a):
        bundled = bundle([a, -a], rng=0)
        assert set(np.unique(bundled)) <= {-1, 1}

    def test_accepts_matrix_input(self, a, b):
        matrix = np.vstack([a, b, a])
        assert np.array_equal(bundle(matrix), bundle([a, b, a]))


class TestNormalizeHard:
    def test_sign_of_accumulator(self):
        accumulator = np.array([5, -3, 2, -1])
        assert np.array_equal(
            normalize_hard(accumulator, rng=0)[np.array([0, 1, 2, 3])],
            np.array([1, -1, 1, -1], dtype=np.int8),
        )

    def test_ties_resolved_to_bipolar(self):
        accumulator = np.zeros(100, dtype=np.int64)
        normalized = normalize_hard(accumulator, rng=0)
        assert set(np.unique(normalized)) <= {-1, 1}

    def test_deterministic_given_seed(self):
        accumulator = np.zeros(50, dtype=np.int64)
        assert np.array_equal(
            normalize_hard(accumulator, rng=7), normalize_hard(accumulator, rng=7)
        )


class TestPermute:
    def test_roll_by_one(self):
        vector = np.array([1, 2, 3, 4])
        assert np.array_equal(permute(vector, 1), np.array([4, 1, 2, 3]))

    def test_inverse(self, a):
        assert np.array_equal(permute(permute(a, 3), -3), a)

    def test_full_cycle_is_identity(self, a):
        assert np.array_equal(permute(a, DIMENSION), a)

    def test_result_quasi_orthogonal(self, a):
        assert abs(cosine_similarity(permute(a, 1), a)) < expected_orthogonality_bound(
            DIMENSION
        )


class TestSimilarities:
    def test_cosine_self_similarity(self, a):
        assert cosine_similarity(a, a) == pytest.approx(1.0)

    def test_cosine_negation(self, a):
        assert cosine_similarity(a, -a) == pytest.approx(-1.0)

    def test_cosine_random_pair_near_zero(self, a, b):
        assert abs(cosine_similarity(a, b)) < expected_orthogonality_bound(DIMENSION)

    def test_cosine_zero_vector(self, a):
        assert cosine_similarity(a, np.zeros_like(a)) == 0.0

    def test_hamming_self(self, a):
        assert hamming_similarity(a, a) == 1.0

    def test_hamming_negation(self, a):
        assert hamming_similarity(a, -a) == 0.0

    def test_hamming_random_pair_near_half(self, a, b):
        assert 0.4 < hamming_similarity(a, b) < 0.6

    def test_dot_matches_manual(self, a, b):
        assert dot_similarity(a, b) == pytest.approx(float(np.dot(a, b)))

    def test_dispatch(self, a, b):
        assert similarity(a, b, "cosine") == cosine_similarity(a, b)
        assert similarity(a, b, "hamming") == hamming_similarity(a, b)
        assert similarity(a, b, "dot") == dot_similarity(a, b)

    def test_unknown_metric_rejected(self, a, b):
        with pytest.raises(ValueError):
            similarity(a, b, "euclidean")

    def test_shape_mismatch_rejected(self, a):
        with pytest.raises(ValueError):
            cosine_similarity(a, a[:-1])
        with pytest.raises(ValueError):
            hamming_similarity(a, a[:-1])


class TestSimilarityMatrix:
    def test_shape(self, a, b, c):
        matrix = similarity_matrix([a, b], [a, b, c])
        assert matrix.shape == (2, 3)

    def test_cosine_matches_pairwise(self, a, b, c):
        matrix = similarity_matrix([a, b], [b, c], metric="cosine")
        assert matrix[0, 0] == pytest.approx(cosine_similarity(a, b))
        assert matrix[1, 1] == pytest.approx(cosine_similarity(b, c))

    def test_hamming_matches_pairwise(self, a, b):
        matrix = similarity_matrix([a], [a, b], metric="hamming")
        assert matrix[0, 0] == pytest.approx(1.0)
        assert matrix[0, 1] == pytest.approx(hamming_similarity(a, b))

    def test_dot_matches_pairwise(self, a, b):
        matrix = similarity_matrix([a], [b], metric="dot")
        assert matrix[0, 0] == pytest.approx(dot_similarity(a, b))

    def test_dimension_mismatch_rejected(self, a):
        with pytest.raises(ValueError):
            similarity_matrix([a], [a[:-2]])

    def test_unknown_metric_rejected(self, a, b):
        with pytest.raises(ValueError):
            similarity_matrix([a], [b], metric="manhattan")
