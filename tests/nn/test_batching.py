"""Tests for graph mini-batching."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.nn.batching import (
    batch_graphs,
    constant_feature_matrix,
    degree_feature_matrix,
    iterate_minibatches,
)


class TestFeatureMatrices:
    def test_degree_features_one_hot(self, star_graph):
        features = degree_feature_matrix([star_graph], max_degree=8)
        assert features.shape == (6, 9)
        assert features[0, 5] == 1.0
        assert features[1, 1] == 1.0
        assert np.all(features.sum(axis=1) == 1.0)

    def test_degree_capped(self, star_graph):
        features = degree_feature_matrix([star_graph], max_degree=3)
        assert features[0, 3] == 1.0

    def test_constant_features(self, triangle_graph, path_graph):
        features = constant_feature_matrix([triangle_graph, path_graph])
        assert features.shape == (8, 1)
        assert np.all(features == 1.0)


class TestBatchGraphs:
    def test_block_diagonal_adjacency(self, triangle_graph, path_graph):
        batch = batch_graphs([triangle_graph, path_graph], class_to_index={0: 0, 1: 1})
        adjacency = batch.adjacency.toarray()
        assert adjacency.shape == (8, 8)
        # No edges between the two graphs' blocks.
        assert np.all(adjacency[:3, 3:] == 0)
        assert np.all(adjacency[3:, :3] == 0)

    def test_pooling_matrix_sums_nodes_per_graph(self, triangle_graph, path_graph):
        batch = batch_graphs([triangle_graph, path_graph], class_to_index={0: 0, 1: 1})
        pooled = batch.pooling @ np.ones((8, 1))
        assert pooled[0, 0] == 3
        assert pooled[1, 0] == 5

    def test_labels_mapped_to_indices(self, triangle_graph, path_graph):
        batch = batch_graphs(
            [triangle_graph, path_graph], class_to_index={0: 7, 1: 9}
        )
        assert list(batch.labels) == [7, 9]

    def test_no_labels_when_class_map_missing(self, triangle_graph):
        batch = batch_graphs([triangle_graph])
        assert batch.labels is None

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            batch_graphs([])

    def test_num_graphs(self, small_graph_collection):
        batch = batch_graphs(small_graph_collection, class_to_index={0: 0, 1: 1})
        assert batch.num_graphs == len(small_graph_collection)

    def test_constant_features_option(self, triangle_graph):
        batch = batch_graphs([triangle_graph], degree_features=False)
        assert batch.node_features.shape == (3, 1)


class TestIterateMinibatches:
    def test_covers_all_graphs(self, small_graph_collection):
        batches = list(
            iterate_minibatches(
                small_graph_collection,
                batch_size=4,
                class_to_index={0: 0, 1: 1},
                shuffle=False,
            )
        )
        assert sum(batch.num_graphs for batch in batches) == len(small_graph_collection)
        assert len(batches) == 2

    def test_shuffle_reproducible(self, small_graph_collection):
        first = [
            batch.labels.tolist()
            for batch in iterate_minibatches(
                small_graph_collection,
                batch_size=3,
                class_to_index={0: 0, 1: 1},
                shuffle=True,
                rng=0,
            )
        ]
        second = [
            batch.labels.tolist()
            for batch in iterate_minibatches(
                small_graph_collection,
                batch_size=3,
                class_to_index={0: 0, 1: 1},
                shuffle=True,
                rng=0,
            )
        ]
        assert first == second

    def test_invalid_batch_size(self, small_graph_collection):
        with pytest.raises(ValueError):
            list(
                iterate_minibatches(
                    small_graph_collection, batch_size=0, class_to_index={0: 0, 1: 1}
                )
            )
