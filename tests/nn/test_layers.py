"""Tests for the neural network layers."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import MLP, BatchNorm1d, Dropout, Linear, Module, ReLU, Sequential


class TestModule:
    def test_parameters_collected_from_attributes_and_children(self):
        class Model(Module):
            def __init__(self):
                self.layer = Linear(4, 3, rng=0)
                self.head = Linear(3, 2, rng=1)

            def forward(self, x):
                return self.head(self.layer(x))

        model = Model()
        # Two weights and two biases.
        assert len(model.parameters()) == 4
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_parameters_collected_from_lists(self):
        class Model(Module):
            def __init__(self):
                self.layers = [Linear(2, 2, rng=0), Linear(2, 2, rng=1)]

            def forward(self, x):
                for layer in self.layers:
                    x = layer(x)
                return x

        assert len(Model().parameters()) == 4

    def test_zero_grad(self):
        layer = Linear(3, 2, rng=0)
        output = layer(Tensor(np.ones((4, 3)))).sum()
        output.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self):
        model = Sequential(Linear(3, 3, rng=0), Dropout(0.5), ReLU())
        model.eval()
        assert all(not module.training for module in model)
        model.train()
        assert all(module.training for module in model)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, rng=0)
        output = layer(Tensor(np.random.default_rng(0).normal(size=(7, 5))))
        assert output.shape == (7, 3)

    def test_no_bias(self):
        layer = Linear(5, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_forward_matches_manual(self):
        layer = Linear(4, 2, rng=0)
        inputs = np.random.default_rng(1).normal(size=(3, 4))
        expected = inputs @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(inputs)).data, expected)

    def test_gradients_flow(self):
        layer = Linear(4, 2, rng=0)
        loss = (layer(Tensor(np.ones((3, 4)))) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Linear(0, 3)
        with pytest.raises(ValueError):
            Linear(3, 0)

    def test_glorot_initialization_scale(self):
        layer = Linear(100, 100, rng=0)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit + 1e-12
        assert np.abs(layer.weight.data).std() > 0


class TestReLUAndDropout:
    def test_relu_clips_negatives(self):
        output = ReLU()(Tensor(np.array([-1.0, 0.0, 2.0])))
        assert np.array_equal(output.data, [0.0, 0.0, 2.0])

    def test_dropout_identity_in_eval(self):
        dropout = Dropout(0.5, rng=0)
        dropout.eval()
        inputs = np.ones((10, 10))
        assert np.array_equal(dropout(Tensor(inputs)).data, inputs)

    def test_dropout_zero_probability_is_identity(self):
        dropout = Dropout(0.0)
        inputs = np.ones((5, 5))
        assert np.array_equal(dropout(Tensor(inputs)).data, inputs)

    def test_dropout_scales_kept_units(self):
        dropout = Dropout(0.5, rng=0)
        outputs = dropout(Tensor(np.ones((2000,)))).data
        kept = outputs[outputs > 0]
        assert np.allclose(kept, 2.0)
        assert 0.3 < (len(kept) / 2000) < 0.7

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestBatchNorm:
    def test_normalizes_batch_statistics(self):
        layer = BatchNorm1d(4)
        rng = np.random.default_rng(0)
        inputs = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        outputs = layer(Tensor(inputs)).data
        assert np.allclose(outputs.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(outputs.std(axis=0), 1.0, atol=1e-2)

    def test_running_statistics_used_in_eval(self):
        layer = BatchNorm1d(3, momentum=0.5)
        rng = np.random.default_rng(0)
        for _ in range(20):
            layer(Tensor(rng.normal(loc=2.0, size=(50, 3))))
        layer.eval()
        outputs = layer(Tensor(np.full((10, 3), 2.0))).data
        assert np.abs(outputs).max() < 0.5

    def test_learnable_scale_and_shift(self):
        layer = BatchNorm1d(2)
        layer.gamma.data[:] = 2.0
        layer.beta.data[:] = 1.0
        inputs = np.random.default_rng(0).normal(size=(100, 2))
        outputs = layer(Tensor(inputs)).data
        assert np.allclose(outputs.mean(axis=0), 1.0, atol=1e-6)

    def test_invalid_features_rejected(self):
        with pytest.raises(ValueError):
            BatchNorm1d(0)


class TestSequentialAndMLP:
    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(3, 3, rng=0), ReLU())
        output = model(Tensor(np.random.default_rng(0).normal(size=(5, 3))))
        assert output.shape == (5, 3)
        assert np.all(output.data >= 0)

    def test_sequential_len_iter(self):
        model = Sequential(ReLU(), ReLU())
        assert len(model) == 2
        assert all(isinstance(module, ReLU) for module in model)

    def test_mlp_structure(self):
        mlp = MLP(4, 8, 2, rng=0)
        output = mlp(Tensor(np.random.default_rng(0).normal(size=(6, 4))))
        assert output.shape == (6, 2)

    def test_mlp_without_batch_norm(self):
        mlp = MLP(4, 8, 2, use_batch_norm=False, rng=0)
        assert len(mlp) == 3

    def test_mlp_is_trainable(self):
        mlp = MLP(3, 6, 2, rng=0)
        loss = (mlp(Tensor(np.ones((4, 3)))) ** 2).sum()
        loss.backward()
        assert all(parameter.grad is not None for parameter in mlp.parameters())
