"""Tests for the reverse-mode autodiff engine."""

import numpy as np
import pytest
from scipy import sparse

from repro.nn.autograd import Tensor, concatenate, no_grad, parameter, sparse_matmul


def numerical_gradient(function, value, epsilon=1e-6):
    """Central-difference numerical gradient of a scalar function of an array."""
    value = np.asarray(value, dtype=np.float64)
    gradient = np.zeros_like(value)
    flat_value = value.ravel()
    flat_gradient = gradient.ravel()
    for index in range(flat_value.size):
        original = flat_value[index]
        flat_value[index] = original + epsilon
        upper = function(value)
        flat_value[index] = original - epsilon
        lower = function(value)
        flat_value[index] = original
        flat_gradient[index] = (upper - lower) / (2 * epsilon)
    return gradient


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    """Compare the autograd gradient of a scalar loss with a numerical estimate."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    leaf = parameter(data.copy())
    loss = build_loss(leaf)
    loss.backward()
    analytic = leaf.grad

    def scalar_loss(array):
        return build_loss(Tensor(array)).item()

    numeric = numerical_gradient(scalar_loss, data.copy())
    assert analytic is not None
    assert np.allclose(analytic, numeric, atol=atol), (
        f"gradient mismatch: max abs diff {np.abs(analytic - numeric).max()}"
    )


class TestBasicOps:
    def test_add_backward(self):
        check_gradient(lambda x: (x + 3.0).sum(), (4, 3))

    def test_mul_backward(self):
        check_gradient(lambda x: (x * x).sum(), (5,))

    def test_sub_and_neg_backward(self):
        check_gradient(lambda x: ((-x) - 2.0 * x).sum(), (3, 2))

    def test_div_backward(self):
        check_gradient(lambda x: (x / 2.5).sum(), (4,))

    def test_pow_backward(self):
        check_gradient(lambda x: (x**3).sum(), (6,))

    def test_matmul_backward(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(3, 2))
        check_gradient(lambda x: (x @ Tensor(other)).sum(), (4, 3))

    def test_relu_backward(self):
        check_gradient(lambda x: x.relu().sum(), (10,))

    def test_exp_log_backward(self):
        check_gradient(lambda x: (x.exp() + 1.0).log().sum(), (5,))

    def test_sum_axis_backward(self):
        check_gradient(lambda x: (x.sum(axis=0) * 2.0).sum(), (3, 4))

    def test_mean_backward(self):
        check_gradient(lambda x: x.mean(), (7,))

    def test_reshape_transpose_backward(self):
        check_gradient(lambda x: (x.reshape(2, 6).T * 3.0).sum(), (3, 4))

    def test_log_softmax_backward(self):
        check_gradient(lambda x: (x.log_softmax(axis=-1) ** 2).sum(), (3, 5))

    def test_broadcast_add_backward(self):
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(4, 3))
        check_gradient(lambda b: (Tensor(matrix) + b).sum(), (3,))

    def test_broadcast_mul_backward(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(4, 3))
        check_gradient(lambda b: ((Tensor(matrix) * b) ** 2).sum(), (3,))

    def test_concatenate_backward(self):
        rng = np.random.default_rng(4)
        other = rng.normal(size=(2, 3))
        check_gradient(
            lambda x: concatenate([x, Tensor(other)], axis=1).sum(), (2, 4)
        )


class TestSparseMatmul:
    def test_forward_matches_dense(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((5, 5)) < 0.4).astype(float)
        matrix = sparse.csr_matrix(dense)
        features = rng.normal(size=(5, 3))
        result = sparse_matmul(matrix, Tensor(features))
        assert np.allclose(result.data, dense @ features)

    def test_backward_matches_numerical(self):
        rng = np.random.default_rng(1)
        dense = (rng.random((6, 6)) < 0.3).astype(float)
        matrix = sparse.csr_matrix(dense)
        check_gradient(lambda x: (sparse_matmul(matrix, x) ** 2).sum(), (6, 4))


class TestGraphMechanics:
    def test_gradient_accumulates_across_uses(self):
        x = parameter(np.array([2.0]))
        loss = (x * 3.0 + x * 4.0).sum()
        loss.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_diamond_graph(self):
        x = parameter(np.array([1.5]))
        y = x * 2.0
        z = x * 3.0
        loss = (y * z).sum()
        loss.backward()
        # d/dx (6 x^2) = 12 x
        assert x.grad[0] == pytest.approx(18.0)

    def test_zero_grad(self):
        x = parameter(np.ones(3))
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_scalar(self):
        x = parameter(np.ones((2, 2)))
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_backward_with_explicit_gradient(self):
        x = parameter(np.ones(3))
        y = x * 2.0
        y.backward(np.array([1.0, 0.0, 2.0]))
        assert np.allclose(x.grad, [2.0, 0.0, 4.0])

    def test_no_grad_disables_tracking(self):
        x = parameter(np.ones(3))
        with no_grad():
            y = x * 2.0
        assert y._backward is None
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = parameter(np.ones(3))
        y = (x * 2.0).detach()
        z = (y * 3.0).sum()
        z.backward()
        assert x.grad is None

    def test_constants_receive_no_grad(self):
        x = parameter(np.ones(2))
        constant = Tensor(np.ones(2))
        (x * constant).sum().backward()
        assert constant.grad is None
        assert x.grad is not None

    def test_item_and_numpy(self):
        x = Tensor(np.array([3.5]))
        assert x.item() == 3.5
        assert x.numpy() is x.data
        assert x.shape == (1,)
        assert len(x) == 1

    def test_repeated_backward_accumulates(self):
        x = parameter(np.array([1.0]))
        loss = (x * 5.0).sum()
        loss.backward()
        loss.backward()
        assert x.grad[0] == pytest.approx(10.0)

    def test_concatenate_single_tensor(self):
        x = Tensor(np.ones(3))
        assert concatenate([x]) is x

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate([])
