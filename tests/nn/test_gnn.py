"""Tests for the GIN models and the GNN trainer."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.batching import batch_graphs
from repro.nn.gnn import GINClassifier, GINConv, GINJKClassifier
from repro.nn.training import GNNTrainer, TrainingConfig


class TestGINConv:
    def test_output_shape(self, small_graph_collection):
        batch = batch_graphs(small_graph_collection, class_to_index={0: 0, 1: 1})
        convolution = GINConv(batch.node_features.shape[1], 16, rng=0)
        output = convolution(Tensor(batch.node_features), batch.adjacency)
        assert output.shape == (batch.node_features.shape[0], 16)

    def test_epsilon_is_trainable(self):
        convolution = GINConv(4, 8, rng=0)
        assert any(parameter is convolution.epsilon for parameter in convolution.parameters())

    def test_isolated_vertex_uses_own_features(self):
        from repro.graphs.graph import Graph

        graph = Graph(2, [], graph_label=0)
        batch = batch_graphs([graph], class_to_index={0: 0}, degree_features=False)
        convolution = GINConv(1, 4, use_batch_norm=False, rng=0)
        output = convolution(Tensor(batch.node_features), batch.adjacency)
        # Both isolated vertices have identical features, so identical outputs.
        assert np.allclose(output.data[0], output.data[1])


class TestGINClassifiers:
    @pytest.mark.parametrize("model_class", [GINClassifier, GINJKClassifier])
    def test_logit_shape(self, model_class, small_graph_collection):
        batch = batch_graphs(small_graph_collection, class_to_index={0: 0, 1: 1})
        model = model_class(batch.node_features.shape[1], 2, hidden_features=8, seed=0)
        logits = model(batch)
        assert logits.shape == (len(small_graph_collection), 2)

    @pytest.mark.parametrize("model_class", [GINClassifier, GINJKClassifier])
    def test_all_parameters_receive_gradients(self, model_class, small_graph_collection):
        from repro.nn.losses import cross_entropy

        batch = batch_graphs(small_graph_collection, class_to_index={0: 0, 1: 1})
        model = model_class(
            batch.node_features.shape[1], 2, hidden_features=8, dropout=0.0, seed=0
        )
        loss = cross_entropy(model(batch), batch.labels)
        loss.backward()
        with_gradient = [p for p in model.parameters() if p.grad is not None]
        assert len(with_gradient) == len(model.parameters())

    def test_multiple_layers_supported(self, small_graph_collection):
        batch = batch_graphs(small_graph_collection, class_to_index={0: 0, 1: 1})
        model = GINClassifier(
            batch.node_features.shape[1], 2, hidden_features=8, num_layers=3, seed=0
        )
        assert model(batch).shape == (len(small_graph_collection), 2)

    def test_jk_readout_concatenates_layers(self, small_graph_collection):
        batch = batch_graphs(small_graph_collection, class_to_index={0: 0, 1: 1})
        in_features = batch.node_features.shape[1]
        model = GINJKClassifier(in_features, 2, hidden_features=8, num_layers=2, seed=0)
        assert model.readout.in_features == in_features + 8 * 2

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            GINClassifier(4, 2, num_layers=0)
        with pytest.raises(ValueError):
            GINJKClassifier(4, 2, num_layers=0)


class TestGNNTrainer:
    def test_paper_default_configuration(self):
        config = TrainingConfig()
        assert config.hidden_features == 32
        assert config.num_layers == 1
        assert config.batch_size == 128
        assert config.learning_rate == pytest.approx(0.01)
        assert config.scheduler_patience == 5
        assert config.scheduler_factor == pytest.approx(0.5)
        assert config.min_learning_rate == pytest.approx(1e-6)

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            GNNTrainer("gcn")

    def test_learns_separable_dataset(self, two_class_dataset):
        config = TrainingConfig(epochs=30, hidden_features=16, batch_size=16, seed=0)
        trainer = GNNTrainer("gin", config)
        trainer.fit(two_class_dataset.graphs, two_class_dataset.labels)
        accuracy = trainer.score(two_class_dataset.graphs, two_class_dataset.labels)
        assert accuracy > 0.8

    def test_jk_variant_learns(self, two_class_dataset):
        config = TrainingConfig(epochs=30, hidden_features=16, batch_size=16, seed=0)
        trainer = GNNTrainer("gin-jk", config)
        trainer.fit(two_class_dataset.graphs, two_class_dataset.labels)
        accuracy = trainer.score(two_class_dataset.graphs, two_class_dataset.labels)
        assert accuracy > 0.8

    def test_history_recorded(self, two_class_dataset):
        config = TrainingConfig(epochs=5, hidden_features=8, batch_size=16, seed=0)
        trainer = GNNTrainer("gin", config)
        trainer.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert trainer.history is not None
        assert len(trainer.history.losses) == 5
        assert len(trainer.history.accuracies) == 5
        assert trainer.history.wall_time_seconds > 0

    def test_loss_decreases(self, two_class_dataset):
        config = TrainingConfig(epochs=20, hidden_features=16, batch_size=16, seed=0)
        trainer = GNNTrainer("gin", config)
        trainer.fit(two_class_dataset.graphs, two_class_dataset.labels)
        losses = trainer.history.losses
        assert np.mean(losses[-3:]) < np.mean(losses[:3])

    def test_predict_before_fit_rejected(self, two_class_dataset):
        with pytest.raises(RuntimeError):
            GNNTrainer().predict(two_class_dataset.graphs)

    def test_length_mismatch_rejected(self, two_class_dataset):
        with pytest.raises(ValueError):
            GNNTrainer().fit(two_class_dataset.graphs, two_class_dataset.labels[:-1])

    def test_predictions_use_original_labels(self, two_class_dataset):
        config = TrainingConfig(epochs=3, hidden_features=8, batch_size=16, seed=0)
        trainer = GNNTrainer("gin", config)
        trainer.fit(two_class_dataset.graphs, two_class_dataset.labels)
        predictions = trainer.predict(two_class_dataset.graphs[:5])
        assert set(predictions) <= set(two_class_dataset.labels)
