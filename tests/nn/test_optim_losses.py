"""Tests for optimizers, the LR scheduler, and loss functions."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, parameter
from repro.nn.losses import accuracy_from_logits, cross_entropy
from repro.nn.optim import SGD, Adam, ReduceLROnPlateau


def quadratic_loss(weights: Tensor) -> Tensor:
    """A simple convex objective with minimum at (1, -2, 3)."""
    target = Tensor(np.array([1.0, -2.0, 3.0]))
    return ((weights - target) ** 2).sum()


class TestSGD:
    def test_minimizes_quadratic(self):
        weights = parameter(np.zeros(3))
        optimizer = SGD([weights], learning_rate=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss = quadratic_loss(weights)
            loss.backward()
            optimizer.step()
        assert np.allclose(weights.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_momentum_accelerates(self):
        plain_weights = parameter(np.zeros(3))
        momentum_weights = parameter(np.zeros(3))
        plain = SGD([plain_weights], learning_rate=0.01)
        with_momentum = SGD([momentum_weights], learning_rate=0.01, momentum=0.9)
        for _ in range(50):
            for optimizer, weights in ((plain, plain_weights), (with_momentum, momentum_weights)):
                optimizer.zero_grad()
                quadratic_loss(weights).backward()
                optimizer.step()
        assert quadratic_loss(momentum_weights).item() < quadratic_loss(plain_weights).item()

    def test_weight_decay_shrinks_weights(self):
        weights = parameter(np.ones(3) * 10.0)
        optimizer = SGD([weights], learning_rate=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (weights.sum() * 0.0).backward()
        optimizer.step()
        assert np.all(np.abs(weights.data) < 10.0)

    def test_parameters_without_grad_skipped(self):
        weights = parameter(np.ones(3))
        optimizer = SGD([weights], learning_rate=0.1)
        optimizer.step()  # no gradient accumulated; must not crash
        assert np.allclose(weights.data, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], learning_rate=0.1)
        with pytest.raises(ValueError):
            SGD([parameter(np.ones(1))], learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD([parameter(np.ones(1))], learning_rate=0.1, momentum=1.5)


class TestAdam:
    def test_minimizes_quadratic(self):
        weights = parameter(np.zeros(3))
        optimizer = Adam([weights], learning_rate=0.05)
        for _ in range(500):
            optimizer.zero_grad()
            quadratic_loss(weights).backward()
            optimizer.step()
        assert np.allclose(weights.data, [1.0, -2.0, 3.0], atol=1e-2)

    def test_default_learning_rate_matches_paper(self):
        optimizer = Adam([parameter(np.ones(1))])
        assert optimizer.learning_rate == pytest.approx(0.01)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([parameter(np.ones(1))], betas=(1.0, 0.9))

    def test_step_count_increments(self):
        weights = parameter(np.ones(2))
        optimizer = Adam([weights], learning_rate=0.01)
        optimizer.zero_grad()
        (weights * 2.0).sum().backward()
        optimizer.step()
        optimizer.step()
        assert optimizer._step_count == 2


class TestReduceLROnPlateau:
    def test_reduces_after_patience_exceeded(self):
        optimizer = SGD([parameter(np.ones(1))], learning_rate=1.0)
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=2)
        scheduler.step(1.0)
        # No improvement for patience + 1 epochs triggers a reduction.
        assert not scheduler.step(1.0)
        assert not scheduler.step(1.0)
        assert scheduler.step(1.0)
        assert optimizer.learning_rate == pytest.approx(0.5)

    def test_improvement_resets_counter(self):
        optimizer = SGD([parameter(np.ones(1))], learning_rate=1.0)
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        scheduler.step(1.0)
        scheduler.step(1.1)
        scheduler.step(0.9)  # improvement
        scheduler.step(1.0)
        reduced = scheduler.step(1.0)
        assert reduced
        assert optimizer.learning_rate == pytest.approx(0.5)

    def test_minimum_learning_rate_respected(self):
        optimizer = SGD([parameter(np.ones(1))], learning_rate=1e-6)
        scheduler = ReduceLROnPlateau(
            optimizer, factor=0.5, patience=0, min_learning_rate=1e-6
        )
        scheduler.step(1.0)
        scheduler.step(1.0)
        assert optimizer.learning_rate == pytest.approx(1e-6)

    def test_max_mode(self):
        optimizer = SGD([parameter(np.ones(1))], learning_rate=1.0)
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=0, mode="max")
        scheduler.step(0.5)
        scheduler.step(0.6)  # improvement in max mode
        assert optimizer.learning_rate == pytest.approx(1.0)
        scheduler.step(0.4)
        scheduler.step(0.4)
        assert optimizer.learning_rate < 1.0

    def test_paper_schedule_defaults(self):
        optimizer = Adam([parameter(np.ones(1))], learning_rate=0.01)
        scheduler = ReduceLROnPlateau(optimizer)
        assert scheduler.factor == pytest.approx(0.5)
        assert scheduler.patience == 5
        assert scheduler.min_learning_rate == pytest.approx(1e-6)

    def test_validation(self):
        optimizer = SGD([parameter(np.ones(1))], learning_rate=1.0)
        with pytest.raises(ValueError):
            ReduceLROnPlateau(optimizer, factor=1.5)
        with pytest.raises(ValueError):
            ReduceLROnPlateau(optimizer, patience=-1)
        with pytest.raises(ValueError):
            ReduceLROnPlateau(optimizer, mode="median")


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_prediction_log_k(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3.0))

    def test_gradient_matches_softmax_minus_onehot(self):
        rng = np.random.default_rng(0)
        logits_data = rng.normal(size=(3, 4))
        logits = parameter(logits_data)
        targets = np.array([1, 0, 3])
        cross_entropy(logits, targets).backward()
        shifted = logits_data - logits_data.max(axis=1, keepdims=True)
        softmax = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        one_hot = np.zeros_like(softmax)
        one_hot[np.arange(3), targets] = 1.0
        expected = (softmax - one_hot) / 3
        assert np.allclose(logits.grad, expected, atol=1e-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 5]))


class TestAccuracyFromLogits:
    def test_all_correct(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0]])
        assert accuracy_from_logits(logits, np.array([0, 1])) == 1.0

    def test_half_correct(self):
        logits = np.array([[2.0, 1.0], [5.0, 3.0]])
        assert accuracy_from_logits(logits, np.array([0, 1])) == 0.5

    def test_accepts_tensor(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert accuracy_from_logits(logits, np.array([0])) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_from_logits(np.zeros((0, 2)), np.array([], dtype=int))
