"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.command == "quickstart"
        assert args.dataset == "MUTAG"
        assert args.dimension == 10_000

    def test_compare_accepts_lists(self):
        args = build_parser().parse_args(
            ["compare", "--datasets", "MUTAG", "PTC_FM", "--methods", "GraphHD", "1-WL"]
        )
        assert args.datasets == ["MUTAG", "PTC_FM"]
        assert args.methods == ["GraphHD", "1-WL"]

    def test_scaling_sizes_are_integers(self):
        args = build_parser().parse_args(["scaling", "--sizes", "10", "20"])
        assert args.sizes == [10, 20]

    def test_robustness_fractions_are_floats(self):
        args = build_parser().parse_args(["robustness", "--fractions", "0", "0.5"])
        assert args.fractions == [0.0, 0.5]

    def test_backend_flag_defaults_to_dense(self):
        for command in ("quickstart", "compare", "scaling", "robustness", "datasets"):
            args = build_parser().parse_args([command])
            assert args.backend == "dense"

    def test_backend_flag_accepts_packed(self):
        args = build_parser().parse_args(["quickstart", "--backend", "packed"])
        assert args.backend == "packed"

    def test_backend_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quickstart", "--backend", "sparse"])

    def test_parallel_flags_on_every_experiment_command(self):
        for command in ("quickstart", "compare", "scaling", "robustness"):
            args = build_parser().parse_args([command])
            assert args.n_jobs is None
            assert args.encoding_store is None
            assert args.clear_encoding_store is False

    def test_n_jobs_flag_parses(self):
        args = build_parser().parse_args(["quickstart", "--n-jobs", "4"])
        assert args.n_jobs == 4

    def test_fault_tolerance_flags_on_every_experiment_command(self):
        for command in ("quickstart", "compare", "scaling", "robustness"):
            args = build_parser().parse_args([command])
            assert args.task_timeout is None
            assert args.task_retries == 0
            assert args.checkpoint is None

    def test_fault_tolerance_flags_parse(self):
        args = build_parser().parse_args(
            [
                "quickstart",
                "--task-timeout",
                "30.5",
                "--task-retries",
                "2",
                "--checkpoint",
                "/tmp/journal",
            ]
        )
        assert args.task_timeout == 30.5
        assert args.task_retries == 2
        assert args.checkpoint == "/tmp/journal"

    def test_encoding_store_flags_parse(self):
        args = build_parser().parse_args(
            ["compare", "--encoding-store", "/tmp/store", "--clear-encoding-store"]
        )
        assert args.encoding_store == "/tmp/store"
        assert args.clear_encoding_store is True

    def test_clear_encoding_store_requires_store_path(self):
        with pytest.raises(SystemExit):
            main(["quickstart", "--clear-encoding-store"])

    def test_encoding_store_mmap_flag_parses(self):
        for command in ("quickstart", "compare", "scaling", "robustness"):
            args = build_parser().parse_args([command])
            assert args.encoding_store_mmap is False
        args = build_parser().parse_args(["quickstart", "--encoding-store-mmap"])
        assert args.encoding_store_mmap is True

    def test_store_subcommand_parses(self):
        args = build_parser().parse_args(["store", "stats", "/tmp/store"])
        assert args.command == "store"
        assert args.store_action == "stats"
        assert args.path == "/tmp/store"
        args = build_parser().parse_args(
            ["store", "prune", "/tmp/store", "--max-bytes", "100", "--max-age", "3.5"]
        )
        assert args.max_bytes == 100
        assert args.max_age == 3.5
        assert args.policy == "lru"

    def test_store_subcommand_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("DD", "ENZYMES", "MUTAG", "NCI1", "PROTEINS", "PTC_FM"):
            assert name in output

    def test_quickstart_command(self, capsys):
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "accuracy (mean)" in output
        assert "MUTAG" in output

    def test_compare_command(self, capsys):
        exit_code = main(
            [
                "compare",
                "--datasets",
                "MUTAG",
                "--methods",
                "GraphHD",
                "1-WL",
                "--scale",
                "0.15",
                "--folds",
                "2",
                "--dimension",
                "512",
                "--fast",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output
        assert "GraphHD" in output
        assert "1-WL" in output

    def test_scaling_command(self, capsys):
        exit_code = main(
            [
                "scaling",
                "--sizes",
                "20",
                "40",
                "--num-graphs",
                "12",
                "--methods",
                "GraphHD",
                "--dimension",
                "512",
                "--fast",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "vertices" in output
        assert "GraphHD" in output

    def test_robustness_command(self, capsys):
        exit_code = main(
            [
                "robustness",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--fractions",
                "0",
                "0.3",
                "--dimension",
                "512",
                "--repetitions",
                "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "robustness" in output.lower()
        assert "30%" in output

    def test_quickstart_with_n_jobs(self, capsys):
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
                "--n-jobs",
                "2",
            ]
        )
        assert exit_code == 0
        assert "accuracy (mean)" in capsys.readouterr().out

    def test_quickstart_checkpoint_resume_is_identical(self, capsys, tmp_path):
        quickstart = [
            "quickstart",
            "--dataset",
            "MUTAG",
            "--scale",
            "0.2",
            "--dimension",
            "512",
            "--folds",
            "3",
            "--checkpoint",
            str(tmp_path / "journal"),
        ]
        assert main(quickstart) == 0
        first = capsys.readouterr().out
        # The journal was populated by the first run...
        journal_files = list((tmp_path / "journal").iterdir())
        assert any(path.name == "journal.json" for path in journal_files)
        assert any(path.suffix == ".pkl" for path in journal_files)
        # ...so the second run replays it, reporting identical accuracies.
        assert main(quickstart) == 0
        second = capsys.readouterr().out

        def accuracy_lines(text):
            return [line for line in text.splitlines() if "accuracy" in line]

        assert accuracy_lines(first) == accuracy_lines(second)

    def test_n_jobs_env_var_respected(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "2")
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
            ]
        )
        assert exit_code == 0
        assert "accuracy (mean)" in capsys.readouterr().out

    def test_encoding_store_reused_across_runs(self, capsys, tmp_path):
        store_path = str(tmp_path / "store")
        quickstart = [
            "quickstart",
            "--dataset",
            "MUTAG",
            "--scale",
            "0.2",
            "--dimension",
            "512",
            "--folds",
            "3",
            "--encoding-store",
            store_path,
        ]
        assert main(quickstart) == 0
        first = capsys.readouterr().out
        assert "miss" in first
        assert "misses=1" in first

        assert main(quickstart) == 0
        second = capsys.readouterr().out
        assert "hit" in second
        assert "hits=1" in second

    def test_clear_encoding_store_flag_empties_store(self, capsys, tmp_path):
        store_path = str(tmp_path / "store")
        quickstart = [
            "quickstart",
            "--dataset",
            "MUTAG",
            "--scale",
            "0.2",
            "--dimension",
            "512",
            "--folds",
            "3",
            "--encoding-store",
            store_path,
        ]
        assert main(quickstart) == 0
        capsys.readouterr()
        assert main(quickstart + ["--clear-encoding-store"]) == 0
        # The pre-run clear wiped the first run's entry, so this run misses
        # again and rebuilds exactly one entry.
        output = capsys.readouterr().out
        assert "misses=1" in output
        assert "entries=1" in output

    def test_no_encoding_cache_disables_store(self, capsys, tmp_path):
        import os

        store_path = str(tmp_path / "store")
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
                "--encoding-store",
                store_path,
                "--no-encoding-cache",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "encoding store" not in output
        # The paper's timing protocol re-encodes per fold; nothing persisted.
        assert not os.path.isdir(store_path) or os.listdir(store_path) == []

    def test_no_encoding_cache_with_clear_still_clears_store(self, capsys, tmp_path):
        import os

        store_path = str(tmp_path / "store")
        quickstart = [
            "quickstart",
            "--dataset",
            "MUTAG",
            "--scale",
            "0.2",
            "--dimension",
            "512",
            "--folds",
            "3",
            "--encoding-store",
            store_path,
        ]
        assert main(quickstart) == 0
        capsys.readouterr()
        assert os.listdir(store_path) != []
        # --no-encoding-cache disables the store for the run itself, but the
        # docstring promises --clear-encoding-store still clears the
        # directory — and the clear report must count real entries only.
        assert main(
            quickstart + ["--no-encoding-cache", "--clear-encoding-store"]
        ) == 0
        output = capsys.readouterr().out
        assert f"cleared encoding store {store_path}: 1 entries, 0 temp files" in output
        assert os.listdir(store_path) == []

    def test_quickstart_mmap_store_hits(self, capsys, tmp_path):
        store_path = str(tmp_path / "store")
        quickstart = [
            "quickstart",
            "--dataset",
            "MUTAG",
            "--scale",
            "0.2",
            "--dimension",
            "512",
            "--folds",
            "3",
            "--encoding-store",
            store_path,
            "--encoding-store-mmap",
        ]
        assert main(quickstart) == 0
        first = capsys.readouterr().out
        assert "misses=1" in first
        assert main(quickstart) == 0
        second = capsys.readouterr().out
        assert "hits=1" in second
        # The two runs must report identical accuracies: mmap-backed
        # encodings are bit-identical to freshly computed ones.
        pick = lambda text: [
            line for line in text.splitlines() if "accuracy" in line
        ]
        assert pick(first) == pick(second)

    def test_store_lifecycle_commands(self, capsys, tmp_path):
        import os

        store_path = str(tmp_path / "store")
        quickstart = [
            "quickstart",
            "--dataset",
            "MUTAG",
            "--scale",
            "0.2",
            "--dimension",
            "512",
            "--folds",
            "3",
            "--encoding-store",
            store_path,
        ]
        assert main(quickstart) == 0
        capsys.readouterr()

        assert main(["store", "stats", store_path]) == 0
        stats_output = capsys.readouterr().out
        assert "entries" in stats_output and "total bytes" in stats_output

        assert main(["store", "list", store_path]) == 0
        list_output = capsys.readouterr().out
        assert "npy" in list_output

        assert main(["store", "prune", store_path, "--max-bytes", "0"]) == 0
        prune_output = capsys.readouterr().out
        assert "removed 1 entries" in prune_output
        assert [
            name
            for name in os.listdir(store_path)
            if name.endswith((".npy", ".npz"))
        ] == []

        # A pruned store repopulates on the next run.
        assert main(quickstart) == 0
        assert "misses=1" in capsys.readouterr().out

        assert main(["store", "clear", store_path]) == 0
        clear_output = capsys.readouterr().out
        assert "1 entries, 0 temp files" in clear_output

    def test_store_prune_requires_a_bound(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "prune", str(tmp_path / "store")])

    def test_store_migrate_command(self, capsys, tmp_path):
        import numpy as np

        from repro.eval.encoding_store import EncodingStore

        store = EncodingStore(tmp_path / "store")
        import os

        os.makedirs(store.path, exist_ok=True)
        with open(store._legacy_path("ab" * 32), "wb") as handle:
            np.savez_compressed(
                handle,
                store_version=np.int64(store.version),
                encodings=np.ones((4, 16), dtype=np.int8),
            )
        assert main(["store", "migrate", str(store.path)]) == 0
        assert "1 legacy entries" in capsys.readouterr().out
        assert os.path.exists(store._payload_path("ab" * 32))
        assert not os.path.exists(store._legacy_path("ab" * 32))

    def test_compare_with_store_and_n_jobs(self, capsys, tmp_path):
        store_path = str(tmp_path / "store")
        compare = [
            "compare",
            "--datasets",
            "MUTAG",
            "--methods",
            "GraphHD",
            "--scale",
            "0.15",
            "--folds",
            "2",
            "--dimension",
            "512",
            "--fast",
            "--n-jobs",
            "2",
            "--encoding-store",
            store_path,
        ]
        assert main(compare) == 0
        first = capsys.readouterr().out
        assert "hits=0" in first
        assert main(compare) == 0
        second = capsys.readouterr().out
        assert "hits=1" in second

    def test_quickstart_command_packed_backend(self, capsys):
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
                "--backend",
                "packed",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "accuracy (mean)" in output


class TestTrainCommand:
    def test_train_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_train_shard_parses(self):
        args = build_parser().parse_args(
            [
                "train", "shard",
                "--dataset", "MUTAG",
                "--shard-index", "1",
                "--num-shards", "4",
                "--output", "s1.npz",
                "--backend", "packed",
            ]
        )
        assert args.command == "train"
        assert args.train_action == "shard"
        assert args.shard_index == 1
        assert args.num_shards == 4
        assert args.output == "s1.npz"
        assert args.backend == "packed"

    def test_train_merge_parses(self):
        args = build_parser().parse_args(
            ["train", "merge", "a.npz", "b.npz", "--output", "model.npz"]
        )
        assert args.train_action == "merge"
        assert args.states == ["a.npz", "b.npz"]
        assert args.state_output is None

    def test_train_info_parses(self):
        args = build_parser().parse_args(["train", "info", "state.npz"])
        assert args.train_action == "info"
        assert args.path == "state.npz"

    def test_shard_index_out_of_range(self, tmp_path):
        with pytest.raises(SystemExit, match="shard-index"):
            main(
                [
                    "train", "shard",
                    "--shard-index", "2",
                    "--num-shards", "2",
                    "--output", str(tmp_path / "s.npz"),
                ]
            )

    def test_shard_merge_info_end_to_end(self, capsys, tmp_path):
        import numpy as np

        from repro.core.encoding import GraphHDConfig
        from repro.core.model import GraphHDClassifier
        from repro.datasets.registry import load_dataset

        common = ["--dataset", "MUTAG", "--scale", "0.2", "--dimension", "512"]
        shard_paths = [str(tmp_path / f"s{i}.npz") for i in range(2)]
        store = str(tmp_path / "store")
        for index, path in enumerate(shard_paths):
            assert main(
                [
                    "train", "shard", *common,
                    "--shard-index", str(index),
                    "--num-shards", "2",
                    "--output", path,
                    "--encoding-store", store,
                ]
            ) == 0
        output = capsys.readouterr().out
        # The second shard must reuse the first shard's cached encodings.
        assert "hits=1" in output

        model_path = str(tmp_path / "model.npz")
        merged_path = str(tmp_path / "merged.npz")
        assert main(
            [
                "train", "merge", *shard_paths,
                "--output", model_path,
                "--state-output", merged_path,
            ]
        ) == 0
        assert "shards merged" in capsys.readouterr().out

        assert main(["train", "info", merged_path]) == 0
        info = capsys.readouterr().out
        assert "GraphHDEncoder" in info
        assert "dimension" in info

        # The merged model is bit-identical to a single-shot fit.
        dataset = load_dataset("MUTAG", scale=0.2, seed=0)
        single = GraphHDClassifier(GraphHDConfig(dimension=512, seed=0)).fit(
            dataset.graphs, dataset.labels
        )
        merged = GraphHDClassifier.load(model_path)
        assert merged.classes == single.classes
        for label in single.classes:
            assert np.array_equal(
                merged.classifier.memory._accumulators[label],
                single.classifier.memory._accumulators[label],
            )
        assert merged.predict(dataset.graphs) == single.predict(dataset.graphs)

    def test_merge_rejects_context_free_state(self, capsys, tmp_path):
        import numpy as np

        from repro.hdc.training_state import TrainingState

        state = TrainingState(512)
        state.add_accumulator("a", np.ones(512, dtype=np.int64), 1)
        path = str(tmp_path / "bare.npz")
        state.save(path)
        with pytest.raises(SystemExit, match="context"):
            main(["train", "merge", path, "--output", str(tmp_path / "m.npz")])
