"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.command == "quickstart"
        assert args.dataset == "MUTAG"
        assert args.dimension == 10_000

    def test_compare_accepts_lists(self):
        args = build_parser().parse_args(
            ["compare", "--datasets", "MUTAG", "PTC_FM", "--methods", "GraphHD", "1-WL"]
        )
        assert args.datasets == ["MUTAG", "PTC_FM"]
        assert args.methods == ["GraphHD", "1-WL"]

    def test_scaling_sizes_are_integers(self):
        args = build_parser().parse_args(["scaling", "--sizes", "10", "20"])
        assert args.sizes == [10, 20]

    def test_robustness_fractions_are_floats(self):
        args = build_parser().parse_args(["robustness", "--fractions", "0", "0.5"])
        assert args.fractions == [0.0, 0.5]

    def test_backend_flag_defaults_to_dense(self):
        for command in ("quickstart", "compare", "scaling", "robustness", "datasets"):
            args = build_parser().parse_args([command])
            assert args.backend == "dense"

    def test_backend_flag_accepts_packed(self):
        args = build_parser().parse_args(["quickstart", "--backend", "packed"])
        assert args.backend == "packed"

    def test_backend_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quickstart", "--backend", "sparse"])

    def test_parallel_flags_on_every_experiment_command(self):
        for command in ("quickstart", "compare", "scaling", "robustness"):
            args = build_parser().parse_args([command])
            assert args.n_jobs is None
            assert args.encoding_store is None
            assert args.clear_encoding_store is False

    def test_n_jobs_flag_parses(self):
        args = build_parser().parse_args(["quickstart", "--n-jobs", "4"])
        assert args.n_jobs == 4

    def test_encoding_store_flags_parse(self):
        args = build_parser().parse_args(
            ["compare", "--encoding-store", "/tmp/store", "--clear-encoding-store"]
        )
        assert args.encoding_store == "/tmp/store"
        assert args.clear_encoding_store is True

    def test_clear_encoding_store_requires_store_path(self):
        with pytest.raises(SystemExit):
            main(["quickstart", "--clear-encoding-store"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("DD", "ENZYMES", "MUTAG", "NCI1", "PROTEINS", "PTC_FM"):
            assert name in output

    def test_quickstart_command(self, capsys):
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "accuracy (mean)" in output
        assert "MUTAG" in output

    def test_compare_command(self, capsys):
        exit_code = main(
            [
                "compare",
                "--datasets",
                "MUTAG",
                "--methods",
                "GraphHD",
                "1-WL",
                "--scale",
                "0.15",
                "--folds",
                "2",
                "--dimension",
                "512",
                "--fast",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output
        assert "GraphHD" in output
        assert "1-WL" in output

    def test_scaling_command(self, capsys):
        exit_code = main(
            [
                "scaling",
                "--sizes",
                "20",
                "40",
                "--num-graphs",
                "12",
                "--methods",
                "GraphHD",
                "--dimension",
                "512",
                "--fast",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "vertices" in output
        assert "GraphHD" in output

    def test_robustness_command(self, capsys):
        exit_code = main(
            [
                "robustness",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--fractions",
                "0",
                "0.3",
                "--dimension",
                "512",
                "--repetitions",
                "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "robustness" in output.lower()
        assert "30%" in output

    def test_quickstart_with_n_jobs(self, capsys):
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
                "--n-jobs",
                "2",
            ]
        )
        assert exit_code == 0
        assert "accuracy (mean)" in capsys.readouterr().out

    def test_n_jobs_env_var_respected(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "2")
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
            ]
        )
        assert exit_code == 0
        assert "accuracy (mean)" in capsys.readouterr().out

    def test_encoding_store_reused_across_runs(self, capsys, tmp_path):
        store_path = str(tmp_path / "store")
        quickstart = [
            "quickstart",
            "--dataset",
            "MUTAG",
            "--scale",
            "0.2",
            "--dimension",
            "512",
            "--folds",
            "3",
            "--encoding-store",
            store_path,
        ]
        assert main(quickstart) == 0
        first = capsys.readouterr().out
        assert "miss" in first
        assert "misses=1" in first

        assert main(quickstart) == 0
        second = capsys.readouterr().out
        assert "hit" in second
        assert "hits=1" in second

    def test_clear_encoding_store_flag_empties_store(self, capsys, tmp_path):
        store_path = str(tmp_path / "store")
        quickstart = [
            "quickstart",
            "--dataset",
            "MUTAG",
            "--scale",
            "0.2",
            "--dimension",
            "512",
            "--folds",
            "3",
            "--encoding-store",
            store_path,
        ]
        assert main(quickstart) == 0
        capsys.readouterr()
        assert main(quickstart + ["--clear-encoding-store"]) == 0
        # The pre-run clear wiped the first run's entry, so this run misses
        # again and rebuilds exactly one entry.
        output = capsys.readouterr().out
        assert "misses=1" in output
        assert "entries=1" in output

    def test_no_encoding_cache_disables_store(self, capsys, tmp_path):
        import os

        store_path = str(tmp_path / "store")
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
                "--encoding-store",
                store_path,
                "--no-encoding-cache",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "encoding store" not in output
        # The paper's timing protocol re-encodes per fold; nothing persisted.
        assert not os.path.isdir(store_path) or os.listdir(store_path) == []

    def test_compare_with_store_and_n_jobs(self, capsys, tmp_path):
        store_path = str(tmp_path / "store")
        compare = [
            "compare",
            "--datasets",
            "MUTAG",
            "--methods",
            "GraphHD",
            "--scale",
            "0.15",
            "--folds",
            "2",
            "--dimension",
            "512",
            "--fast",
            "--n-jobs",
            "2",
            "--encoding-store",
            store_path,
        ]
        assert main(compare) == 0
        first = capsys.readouterr().out
        assert "hits=0" in first
        assert main(compare) == 0
        second = capsys.readouterr().out
        assert "hits=1" in second

    def test_quickstart_command_packed_backend(self, capsys):
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
                "--backend",
                "packed",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "accuracy (mean)" in output
