"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.command == "quickstart"
        assert args.dataset == "MUTAG"
        assert args.dimension == 10_000

    def test_compare_accepts_lists(self):
        args = build_parser().parse_args(
            ["compare", "--datasets", "MUTAG", "PTC_FM", "--methods", "GraphHD", "1-WL"]
        )
        assert args.datasets == ["MUTAG", "PTC_FM"]
        assert args.methods == ["GraphHD", "1-WL"]

    def test_scaling_sizes_are_integers(self):
        args = build_parser().parse_args(["scaling", "--sizes", "10", "20"])
        assert args.sizes == [10, 20]

    def test_robustness_fractions_are_floats(self):
        args = build_parser().parse_args(["robustness", "--fractions", "0", "0.5"])
        assert args.fractions == [0.0, 0.5]

    def test_backend_flag_defaults_to_dense(self):
        for command in ("quickstart", "compare", "scaling", "robustness", "datasets"):
            args = build_parser().parse_args([command])
            assert args.backend == "dense"

    def test_backend_flag_accepts_packed(self):
        args = build_parser().parse_args(["quickstart", "--backend", "packed"])
        assert args.backend == "packed"

    def test_backend_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quickstart", "--backend", "sparse"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("DD", "ENZYMES", "MUTAG", "NCI1", "PROTEINS", "PTC_FM"):
            assert name in output

    def test_quickstart_command(self, capsys):
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "accuracy (mean)" in output
        assert "MUTAG" in output

    def test_compare_command(self, capsys):
        exit_code = main(
            [
                "compare",
                "--datasets",
                "MUTAG",
                "--methods",
                "GraphHD",
                "1-WL",
                "--scale",
                "0.15",
                "--folds",
                "2",
                "--dimension",
                "512",
                "--fast",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output
        assert "GraphHD" in output
        assert "1-WL" in output

    def test_scaling_command(self, capsys):
        exit_code = main(
            [
                "scaling",
                "--sizes",
                "20",
                "40",
                "--num-graphs",
                "12",
                "--methods",
                "GraphHD",
                "--dimension",
                "512",
                "--fast",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "vertices" in output
        assert "GraphHD" in output

    def test_robustness_command(self, capsys):
        exit_code = main(
            [
                "robustness",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--fractions",
                "0",
                "0.3",
                "--dimension",
                "512",
                "--repetitions",
                "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "robustness" in output.lower()
        assert "30%" in output

    def test_quickstart_command_packed_backend(self, capsys):
        exit_code = main(
            [
                "quickstart",
                "--dataset",
                "MUTAG",
                "--scale",
                "0.2",
                "--dimension",
                "512",
                "--folds",
                "3",
                "--backend",
                "packed",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "accuracy (mean)" in output
