"""Property-based tests for the autodiff engine.

Checks gradient linearity, the chain rule against finite differences for
randomly composed expressions, and invariants of the splits/metrics used by
the evaluation harness.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.splits import StratifiedKFold
from repro.eval.metrics import accuracy_score, confusion_matrix
from repro.nn.autograd import Tensor, parameter


def finite_difference(function, data, epsilon=1e-6):
    gradient = np.zeros_like(data)
    flat_data = data.ravel()
    flat_gradient = gradient.ravel()
    for index in range(flat_data.size):
        original = flat_data[index]
        flat_data[index] = original + epsilon
        upper = function(data)
        flat_data[index] = original - epsilon
        lower = function(data)
        flat_data[index] = original
        flat_gradient[index] = (upper - lower) / (2 * epsilon)
    return gradient


arrays = st.integers(min_value=0, max_value=2**31 - 1).map(
    lambda seed: np.random.default_rng(seed).normal(size=(3, 4))
)


class TestAutogradProperties:
    @given(arrays)
    @settings(max_examples=25, deadline=None)
    def test_gradient_of_sum_is_ones(self, data):
        leaf = parameter(data.copy())
        leaf_sum = leaf.sum()
        leaf_sum.backward()
        assert np.allclose(leaf.grad, np.ones_like(data))

    @given(arrays, st.floats(min_value=-3.0, max_value=3.0))
    @settings(max_examples=25, deadline=None)
    def test_gradient_is_linear_in_scalar_multiplier(self, data, scalar):
        first = parameter(data.copy())
        (first * scalar).sum().backward()
        second = parameter(data.copy())
        second.sum().backward()
        assert np.allclose(first.grad, scalar * second.grad)

    @given(arrays)
    @settings(max_examples=15, deadline=None)
    def test_composite_expression_matches_finite_differences(self, data):
        def build(tensor):
            return ((tensor.relu() + 1.0).log() * tensor).sum()

        leaf = parameter(data.copy())
        build(leaf).backward()

        numeric = finite_difference(lambda array: build(Tensor(array)).item(), data.copy())
        assert np.allclose(leaf.grad, numeric, atol=1e-4)

    @given(arrays)
    @settings(max_examples=15, deadline=None)
    def test_log_softmax_rows_normalize(self, data):
        log_probabilities = Tensor(data).log_softmax(axis=-1)
        row_sums = np.exp(log_probabilities.data).sum(axis=-1)
        assert np.allclose(row_sums, 1.0)


label_lists = st.lists(
    st.sampled_from(["a", "b", "c"]), min_size=12, max_size=60
).filter(lambda labels: min(labels.count(c) for c in set(labels)) >= 3)


class TestEvaluationProperties:
    @given(label_lists)
    @settings(max_examples=30, deadline=None)
    def test_kfold_partitions_everything(self, labels):
        splitter = StratifiedKFold(3, seed=0)
        seen = []
        for train_indices, test_indices in splitter.split(labels):
            assert set(train_indices).isdisjoint(test_indices)
            seen.extend(test_indices.tolist())
        assert sorted(seen) == list(range(len(labels)))

    @given(label_lists)
    @settings(max_examples=30, deadline=None)
    def test_accuracy_of_identical_predictions_is_one(self, labels):
        assert accuracy_score(labels, list(labels)) == 1.0

    @given(label_lists, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_confusion_matrix_total_is_sample_count(self, labels, seed):
        rng = np.random.default_rng(seed)
        predictions = [labels[i] for i in rng.integers(0, len(labels), len(labels))]
        matrix, _ = confusion_matrix(labels, predictions)
        assert matrix.sum() == len(labels)

    @given(label_lists, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_accuracy_equals_confusion_trace_ratio(self, labels, seed):
        rng = np.random.default_rng(seed)
        predictions = [labels[i] for i in rng.integers(0, len(labels), len(labels))]
        matrix, _ = confusion_matrix(labels, predictions)
        assert accuracy_score(labels, predictions) == matrix.trace() / len(labels)
