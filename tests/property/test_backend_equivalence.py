"""Property-based tests: the packed backend is the dense backend, bit-packed.

Two invariants underpin the whole backend abstraction and are checked here
over randomized inputs (hypothesis):

* **Binding**: XOR on packed words equals sign multiplication on the bipolar
  unpacking — the algebra GraphHD uses to encode edges is preserved exactly.
* **Similarity**: popcount Hamming similarity on packed vectors ranks (and,
  for the cosine remapping, *scores*) candidates identically to cosine
  similarity on the bipolar equivalents.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc.backend import get_backend, pack_bipolar, unpack_to_bipolar
from repro.hdc.hypervector import random_hypervectors
from repro.hdc.operations import similarity_matrix

DENSE = get_backend("dense")
PACKED = get_backend("packed")

#: Dimensions deliberately include non-multiples of 64 to cover padding.
dimensions = st.sampled_from([64, 100, 256, 300, 512])
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=50, deadline=None)
def test_pack_unpack_roundtrip(seed, dimension):
    matrix = random_hypervectors(3, dimension, rng=seed)
    assert np.array_equal(unpack_to_bipolar(pack_bipolar(matrix), dimension), matrix)


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=50, deadline=None)
def test_xor_binding_equals_sign_multiply(seed, dimension):
    matrix = random_hypervectors(2, dimension, rng=seed)
    a, b = matrix[0], matrix[1]
    packed_bound = PACKED.bind(pack_bipolar(a), pack_bipolar(b))
    # XOR binding on the packed words == sign multiplication of the bipolar
    # unpackings, component for component.
    assert np.array_equal(
        unpack_to_bipolar(packed_bound, dimension),
        (a.astype(np.int16) * b.astype(np.int16)).astype(np.int8),
    )


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=50, deadline=None)
def test_packed_accumulation_equals_dense_sum(seed, dimension):
    count = 1 + seed % 7
    matrix = random_hypervectors(count, dimension, rng=seed)
    assert np.array_equal(
        PACKED.accumulate(pack_bipolar(matrix), dimension),
        matrix.astype(np.int64).sum(axis=0),
    )


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=50, deadline=None)
def test_packed_hamming_ranks_like_cosine(seed, dimension):
    """Packed similarity ranks candidates identically to dense cosine.

    The packed cosine remapping ``1 - 2 * hamming_distance / d`` equals the
    true cosine of bipolar vectors exactly, so the scores themselves (not
    just the ranking) must agree up to float rounding.
    """
    queries = random_hypervectors(4, dimension, rng=seed)
    references = random_hypervectors(6, dimension, rng=seed + 1)
    dense_scores = similarity_matrix(queries, references, metric="cosine")
    packed_scores = PACKED.similarity_matrix(
        pack_bipolar(queries), pack_bipolar(references), dimension, metric="cosine"
    )
    assert np.allclose(dense_scores, packed_scores)
    # Rank comparison on rounded scores: the two backends compute the same
    # value along different float paths, so ties are broken consistently only
    # after quantizing away the last-ulp differences.
    assert np.array_equal(
        np.argsort(-dense_scores.round(9), axis=1, kind="stable"),
        np.argsort(-packed_scores.round(9), axis=1, kind="stable"),
    )


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=30, deadline=None)
def test_packed_permute_equals_dense_roll(seed, dimension):
    """Word-space rotation == dense np.roll for every shift regime.

    Covers in-word shifts, exact word-boundary shifts, multi-word shifts,
    negative shifts and beyond-full-revolution shifts, on dimensions with
    and without a partial final word.
    """
    vector = random_hypervectors(1, dimension, rng=seed)[0]
    packed = pack_bipolar(vector)
    for shift in (0, 1, -1, 7, 63, 64, 65, 128, -64, -200, dimension, 3 * dimension + 5):
        assert np.array_equal(
            PACKED.permute(packed, dimension, shift),
            pack_bipolar(DENSE.permute(vector, dimension, shift)),
        ), f"shift={shift}"


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=30, deadline=None)
def test_packed_segment_accumulate_equals_dense(seed, dimension):
    """Arbitrary (unsorted) segment layouts produce identical class sums."""
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(1, 40))
    segments = int(rng.integers(1, 6))
    ids = rng.integers(0, segments, size=rows)
    matrix = random_hypervectors(rows, dimension, rng=seed)
    assert np.array_equal(
        PACKED.segment_accumulate(pack_bipolar(matrix), ids, segments, dimension),
        DENSE.segment_accumulate(matrix, ids, segments, dimension),
    )


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=30, deadline=None)
def test_packed_normalize_bit_identical_on_ties(seed, dimension):
    """Word-space majority vote == packed dense vote on tie-heavy input.

    Small even accumulator entries make exact zeros (ties) common; both the
    random-stream and the deterministic tie-breaker paths must match the
    dense normalize_hard bit for bit.
    """
    rng = np.random.default_rng(seed)
    accumulator = rng.integers(-2, 3, size=(3, dimension)).astype(np.int64)
    assert np.array_equal(
        PACKED.normalize(accumulator, rng=seed),
        pack_bipolar(DENSE.normalize(accumulator, rng=seed)),
    )
    breaker = random_hypervectors(1, dimension, rng=seed)[0]
    assert np.array_equal(
        PACKED.normalize(accumulator, tie_breaker=breaker),
        pack_bipolar(DENSE.normalize(accumulator, tie_breaker=breaker)),
    )


@given(seed=seeds, dimension=dimensions, count=st.integers(1, 12))
@settings(max_examples=30, deadline=None)
def test_packed_bundle_equals_dense_bundle(seed, dimension, count):
    """End-to-end word-space bundling == dense bundle, odd and even counts."""
    matrix = random_hypervectors(count, dimension, rng=seed)
    assert np.array_equal(
        PACKED.bundle(pack_bipolar(matrix), dimension, rng=seed),
        pack_bipolar(DENSE.bundle(matrix, dimension, rng=seed)),
    )


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=30, deadline=None)
def test_packed_hamming_metric_counts_agreements(seed, dimension):
    matrix = random_hypervectors(2, dimension, rng=seed)
    a, b = matrix[0], matrix[1]
    expected = float(np.mean(a == b))
    scores = PACKED.similarity_matrix(
        pack_bipolar(a)[None, :], pack_bipolar(b)[None, :], dimension, metric="hamming"
    )
    assert scores[0, 0] == pytest.approx(expected)
