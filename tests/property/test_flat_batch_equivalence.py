"""Property-based tests: flat-batch encoding == per-graph encoding, bitwise.

The flat-batch path of :meth:`GraphHDEncoder.encode_many` reorganizes the
whole computation (batched ranks, rank-pair tables, fused normalization)
but must remain *bit-identical* to encoding every graph individually with
:meth:`GraphHDEncoder.encode`.  These tests drive randomized batches — mixed
sizes, empty graphs, self-loops, every centrality and both backends —
through both orchestrations, with the pair-table gate both engaged and
forced off (exercising the per-graph delegation route).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import GraphHDConfig, GraphHDEncoder
from repro.graphs.graph import Graph

DIMENSION = 256

seeds = st.integers(min_value=0, max_value=2**31 - 1)
backends = st.sampled_from(["dense", "packed"])
centralities = st.sampled_from(["pagerank", "degree", "eigenvector", "random"])


def random_batch(seed: int) -> list[Graph]:
    """A randomized batch of graphs: mixed sizes, empty graphs, self-loops."""
    rng = np.random.default_rng(seed)
    graphs = []
    for _ in range(int(rng.integers(1, 10))):
        num_vertices = int(rng.integers(0, 14))
        graph = Graph(num_vertices)
        if num_vertices:
            for _ in range(int(rng.integers(0, 2 * num_vertices + 1))):
                u = int(rng.integers(0, num_vertices))
                v = int(rng.integers(0, num_vertices))
                graph.add_edge(u, v)  # may be a self-loop or a duplicate
        graphs.append(graph)
    # Always exercise the degenerate shapes alongside the random ones.
    graphs.append(Graph(0))
    graphs.append(Graph(3))
    return graphs


def encoders(seed: int, **config) -> tuple[GraphHDEncoder, GraphHDEncoder, GraphHDEncoder]:
    """Three fresh encoders with one config: flat, pair-table-disabled, reference."""
    flat = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=seed, **config))
    fallback = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=seed, **config))
    fallback.PAIR_TABLE_MIN_REUSE = float("inf")  # force the per-graph route
    reference = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=seed, **config))
    return flat, fallback, reference


@given(seed=seeds, backend=backends)
@settings(max_examples=25, deadline=None)
def test_flat_batch_matches_per_graph(seed, backend):
    graphs = random_batch(seed)
    flat, fallback, reference = encoders(seed % 1000, backend=backend)
    expected = reference.encode_many_per_graph(graphs)
    assert np.array_equal(flat.encode_many(graphs), expected)
    assert np.array_equal(fallback.encode_many(graphs), expected)


@given(seed=seeds, backend=backends)
@settings(max_examples=15, deadline=None)
def test_flat_batch_matches_single_encodes(seed, backend):
    graphs = random_batch(seed)
    flat, _, reference = encoders(seed % 1000, backend=backend)
    batch = flat.encode_many(graphs)
    singles = np.vstack([reference.encode(graph) for graph in graphs])
    assert np.array_equal(batch, singles)


@given(seed=seeds, backend=backends, centrality=centralities)
@settings(max_examples=20, deadline=None)
def test_flat_batch_matches_for_every_centrality(seed, backend, centrality):
    graphs = random_batch(seed)
    flat, fallback, reference = encoders(
        seed % 1000, backend=backend, centrality=centrality
    )
    expected = reference.encode_many_per_graph(graphs)
    assert np.array_equal(flat.encode_many(graphs), expected)
    assert np.array_equal(fallback.encode_many(graphs), expected)


@given(seed=seeds, backend=backends)
@settings(max_examples=20, deadline=None)
def test_flat_batch_matches_with_vertices_bundled(seed, backend):
    graphs = random_batch(seed)
    flat, fallback, reference = encoders(
        seed % 1000, backend=backend, include_vertices=True
    )
    expected = reference.encode_many_per_graph(graphs)
    assert np.array_equal(flat.encode_many(graphs), expected)
    assert np.array_equal(fallback.encode_many(graphs), expected)


@given(seed=seeds)
@settings(max_examples=20, deadline=None)
def test_flat_batch_matches_unnormalized_accumulators(seed):
    graphs = random_batch(seed)
    flat, fallback, reference = encoders(
        seed % 1000, backend="dense", normalize_graph_hypervectors=False
    )
    expected = reference.encode_many_per_graph(graphs)
    for result in (flat.encode_many(graphs), fallback.encode_many(graphs)):
        assert result.dtype == expected.dtype == np.int64
        assert np.array_equal(result, expected)


@given(seed=seeds, backend=backends)
@settings(max_examples=10, deadline=None)
def test_flat_batch_empty_and_edgeless_graphs(seed, backend):
    graphs = [Graph(0), Graph(1), Graph(4), Graph(0)]
    flat, _, reference = encoders(seed % 1000, backend=backend)
    batch = flat.encode_many(graphs)
    expected = reference.encode_many_per_graph(graphs)
    assert batch.shape == expected.shape
    assert np.array_equal(batch, expected)
