"""Property-based tests for the graph substrate and the GraphHD encoding.

Invariants checked:

* random graph generators respect their declared vertex/edge bounds;
* PageRank is a probability distribution and is invariant under vertex
  relabelling (up to the corresponding permutation);
* centrality ranks are always a permutation of ``0..n-1``;
* the GraphHD encoding is invariant under graph isomorphism (relabelling),
  which is the key property that makes cross-graph vertex identification by
  centrality rank meaningful.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import GraphHDConfig, GraphHDEncoder
from repro.graphs.centrality import centrality_ranks, pagerank
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.graph import Graph
from repro.graphs.properties import graph_density
from repro.graphs.wl_refinement import wl_subtree_features

DIMENSION = 256


@st.composite
def random_graphs(draw, min_vertices=2, max_vertices=20):
    """Strategy generating small Erdős–Rényi graphs."""
    num_vertices = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    probability = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return erdos_renyi_graph(num_vertices, probability, rng=seed)


def relabel_graph(graph: Graph, permutation: np.ndarray) -> Graph:
    """Apply a vertex permutation to a graph (produces an isomorphic copy)."""
    edges = [(int(permutation[u]), int(permutation[v])) for u, v in graph.edges()]
    return Graph(graph.num_vertices, edges, graph_label=graph.graph_label)


class TestGeneratorInvariants:
    @given(random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_edge_count_bounds(self, graph):
        n = graph.num_vertices
        assert 0 <= graph.num_edges <= n * (n - 1) // 2

    @given(random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_density_bounds(self, graph):
        assert 0.0 <= graph_density(graph) <= 1.0

    @given(random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_adjacency_matrix_symmetric(self, graph):
        dense = graph.adjacency_matrix().toarray()
        assert np.array_equal(dense, dense.T)

    @given(random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_degree_sum_is_twice_edges(self, graph):
        assert graph.degrees().sum() == 2 * graph.num_edges


class TestPageRankInvariants:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_is_probability_distribution(self, graph):
        ranks = pagerank(graph)
        assert np.all(ranks >= 0)
        assert np.isclose(ranks.sum(), 1.0)

    @given(random_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_equivariant_under_relabelling(self, graph, seed):
        permutation = np.random.default_rng(seed).permutation(graph.num_vertices)
        relabelled = relabel_graph(graph, permutation)
        original = pagerank(graph)
        permuted = pagerank(relabelled)
        assert np.allclose(original, permuted[permutation], atol=1e-12)

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_ranks_are_permutation(self, graph):
        ranks = centrality_ranks(pagerank(graph))
        assert sorted(ranks) == list(range(graph.num_vertices))


class TestWLInvariants:
    @given(random_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_subtree_features_isomorphism_invariant(self, graph, seed):
        permutation = np.random.default_rng(seed).permutation(graph.num_vertices)
        relabelled = relabel_graph(graph, permutation)
        features = wl_subtree_features([graph, relabelled], iterations=2)
        assert features[0] == features[1]

    @given(random_graphs())
    @settings(max_examples=25, deadline=None)
    def test_feature_mass_conserved(self, graph):
        iterations = 3
        features = wl_subtree_features([graph], iterations)[0]
        assert sum(features.values()) == graph.num_vertices * (iterations + 1)


class TestGraphHDEncodingInvariants:
    @given(random_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_isomorphism_invariance_for_distinct_centralities(self, graph, seed):
        # GraphHD identifies vertices by their PageRank *rank*; when two
        # vertices tie, the rank order (and hence the encoding) depends on the
        # vertex numbering, exactly as in the paper.  Invariance therefore
        # holds whenever the centralities are pairwise distinct.
        from hypothesis import assume

        centrality = pagerank(graph)
        assume(len(np.unique(np.round(centrality, 12))) == graph.num_vertices)
        encoder = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        permutation = np.random.default_rng(seed).permutation(graph.num_vertices)
        relabelled = relabel_graph(graph, permutation)
        assert np.array_equal(encoder.encode(graph), encoder.encode(relabelled))

    @given(random_graphs())
    @settings(max_examples=20, deadline=None)
    def test_encoding_is_bipolar_of_right_dimension(self, graph):
        encoder = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        hypervector = encoder.encode(graph)
        assert hypervector.shape == (DIMENSION,)
        assert set(np.unique(hypervector)) <= {-1, 1}

    @given(random_graphs())
    @settings(max_examples=20, deadline=None)
    def test_encoding_deterministic(self, graph):
        encoder = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        assert np.array_equal(encoder.encode(graph), encoder.encode(graph))

    @given(random_graphs())
    @settings(max_examples=20, deadline=None)
    def test_unnormalized_accumulator_bounded_by_edges(self, graph):
        encoder = GraphHDEncoder(
            GraphHDConfig(
                dimension=DIMENSION, normalize_graph_hypervectors=False, seed=0
            )
        )
        accumulator = encoder.encode(graph)
        assert np.abs(accumulator).max() <= max(graph.num_edges, 0) or graph.num_edges == 0
