"""Property tests: sharded map-reduce training is single-shot training.

The headline contract of the TrainingState redesign, checked here from three
angles:

* **Shard counts**: for k in {1, 2, 4, 7}, ``fit_sharded`` produces class
  vectors bit-identical to single-shot ``fit`` on the full training set, on
  the dense and the packed backend alike, and merging contiguous shards in
  shard order reproduces even the class listing order (hence tie-breaking).
* **Arbitrary partitions** (hypothesis): any partition of the samples into
  shards — shuffled, class-skewed, wildly unbalanced — merges to the joint
  accumulators and counts, in any merge order.
* **Online updates**: ``partial_fit_many`` equals per-sample ``partial_fit``
  equals batch ``fit``, including for the ``"random"`` centrality ablation
  (whose stream consumption is per-graph, hence batch-invariant — it is
  *sharding* across fresh models that random centrality cannot survive, which
  ``fit_sharded`` rejects).
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.sharded import fit_sharded, shard_indices
from repro.graphs.generators import ring_of_cliques_graph, tree_graph
from repro.hdc.classifier import CentroidClassifier
from repro.hdc.hypervector import random_hypervectors
from repro.hdc.training_state import TrainingState, merge_states

DIMENSION = 512


@functools.lru_cache(maxsize=None)
def toy_dataset():
    """30 clearly separable graphs (cached: encodings are re-derived per test)."""
    rng = np.random.default_rng(7)
    graphs = []
    for index in range(30):
        if index % 2 == 0:
            graphs.append(ring_of_cliques_graph(4, 4, rng=rng, graph_label=0))
        else:
            graphs.append(tree_graph(16, max_children=2, rng=rng, graph_label=1))
    return graphs, [graph.graph_label for graph in graphs]


def make_factory(backend):
    return lambda: GraphHDClassifier(
        GraphHDConfig(dimension=DIMENSION, seed=0, backend=backend)
    )


def assert_same_class_vectors(model, reference, *, same_order=True):
    if same_order:
        assert model.classes == reference.classes
    else:
        assert sorted(map(str, model.classes)) == sorted(map(str, reference.classes))
    for label in reference.classes:
        assert np.array_equal(
            model.classifier.memory._accumulators[label],
            reference.classifier.memory._accumulators[label],
        )
        assert model.classifier.memory.count(label) == reference.classifier.memory.count(
            label
        )


class TestShardCounts:
    @pytest.mark.parametrize("backend", ["dense", "packed"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_sharded_fit_bit_identical(self, backend, n_shards):
        graphs, labels = toy_dataset()
        factory = make_factory(backend)
        single = factory().fit(graphs, labels)
        result = fit_sharded(factory, graphs, labels, n_shards=n_shards)
        assert_same_class_vectors(result.model, single)
        assert result.model.predict(graphs) == single.predict(graphs)
        assert result.state.num_samples == len(graphs)
        assert sum(result.shard_sizes) == len(graphs)

    def test_sharded_fit_bit_identical_under_worker_pool(self):
        graphs, labels = toy_dataset()
        factory = make_factory("dense")
        single = factory().fit(graphs, labels)
        result = fit_sharded(factory, graphs, labels, n_shards=4, n_jobs=2)
        assert_same_class_vectors(result.model, single)

    def test_more_shards_than_samples(self):
        graphs, labels = toy_dataset()
        factory = make_factory("dense")
        single = factory().fit(graphs[:3], labels[:3])
        result = fit_sharded(factory, graphs[:3], labels[:3], n_shards=7)
        assert result.shard_sizes == [1, 1, 1]
        assert_same_class_vectors(result.model, single)

    def test_class_skewed_shards(self):
        # Sort so early shards see only class 0 and late shards only class 1;
        # the merged model must not care.
        graphs, labels = toy_dataset()
        order = sorted(range(len(labels)), key=lambda i: labels[i])
        skewed_graphs = [graphs[i] for i in order]
        skewed_labels = [labels[i] for i in order]
        factory = make_factory("dense")
        single = factory().fit(skewed_graphs, skewed_labels)
        result = fit_sharded(factory, skewed_graphs, skewed_labels, n_shards=4)
        assert_same_class_vectors(result.model, single)

    def test_random_centrality_rejected(self):
        graphs, labels = toy_dataset()
        factory = lambda: GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, centrality="random")
        )
        with pytest.raises(ValueError, match="split-invariant"):
            fit_sharded(factory, graphs, labels, n_shards=2)

    def test_unseeded_config_rejected(self):
        graphs, labels = toy_dataset()
        factory = lambda: GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=None)
        )
        with pytest.raises(ValueError, match="seeded"):
            fit_sharded(factory, graphs, labels, n_shards=2)


class TestArbitraryPartitions:
    @given(seed=st.integers(0, 2**31 - 1), n_shards=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_any_partition_any_merge_order_equals_joint(self, seed, n_shards):
        rng = np.random.default_rng(seed)
        num_samples = 20
        labels = [int(l) for l in rng.integers(0, 3, size=num_samples)]
        matrix = random_hypervectors(num_samples, DIMENSION, rng=seed)
        joint = TrainingState(DIMENSION).add_encodings(matrix, labels)

        permutation = rng.permutation(num_samples)
        shards = np.array_split(permutation, n_shards)
        states = [
            TrainingState(DIMENSION).add_encodings(
                matrix[block], [labels[i] for i in block]
            )
            for block in shards
            if block.size
        ]
        rng.shuffle(states)
        merged = merge_states(states)
        # Accumulators and counts equal the joint fit for every partition and
        # merge order; only the class listing order may differ.
        assert set(map(str, merged.classes)) == set(map(str, joint.classes))
        for label in joint.classes:
            assert np.array_equal(merged.accumulator(label), joint.accumulator(label))
            assert merged.count(label) == joint.count(label)
        assert merged.num_samples == joint.num_samples

    @given(n_shards=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_contiguous_shards_in_order_preserve_class_order(self, n_shards):
        num_samples = 24
        rng = np.random.default_rng(99)
        labels = [int(l) for l in rng.integers(0, 4, size=num_samples)]
        matrix = random_hypervectors(num_samples, DIMENSION, rng=99)
        joint = TrainingState(DIMENSION).add_encodings(matrix, labels)
        states = [
            TrainingState(DIMENSION).add_encodings(
                matrix[block], [labels[i] for i in block]
            )
            for block in shard_indices(num_samples, n_shards)
            if block.size
        ]
        assert merge_states(states) == joint


class TestOnlineEquivalence:
    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_partial_fit_many_equals_singular(self, backend):
        graphs, labels = toy_dataset()
        factory = make_factory(backend)
        singular = factory()
        for graph, label in zip(graphs, labels):
            singular.partial_fit(graph, label)
        batched = factory()
        batched.partial_fit_many(graphs, labels)
        assert_same_class_vectors(batched, singular)

    def test_partial_fit_many_equals_fit(self):
        graphs, labels = toy_dataset()
        factory = make_factory("dense")
        fitted = factory().fit(graphs, labels)
        batched = factory()
        batched.partial_fit_many(graphs, labels)
        assert_same_class_vectors(batched, fitted)

    def test_partial_fit_random_centrality_batch_invariant(self):
        # Random centrality consumes its stream per graph, so batching does
        # not change encodings — only sharding across fresh models does.
        graphs, labels = toy_dataset()
        factory = lambda: GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, centrality="random")
        )
        singular = factory()
        for graph, label in zip(graphs[:8], labels[:8]):
            singular.partial_fit(graph, label)
        batched = factory()
        batched.partial_fit_many(graphs[:8], labels[:8])
        assert_same_class_vectors(batched, singular)

    @given(split=st.integers(1, 29))
    @settings(max_examples=15, deadline=None)
    def test_fit_then_partial_fit_many_equals_full_fit(self, split):
        graphs, labels = toy_dataset()
        factory = make_factory("dense")
        full = factory().fit(graphs, labels)
        staged = factory().fit(graphs[:split], labels[:split])
        staged.partial_fit_many(graphs[split:], labels[split:])
        assert_same_class_vectors(staged, full, same_order=False)


class TestCentroidClassifierBatch:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_partial_fit_many_equals_singular_on_encodings(self, seed):
        rng = np.random.default_rng(seed)
        count = 1 + seed % 12
        labels = [int(l) for l in rng.integers(0, 3, size=count)]
        matrix = random_hypervectors(count, DIMENSION, rng=seed)
        singular = CentroidClassifier(DIMENSION)
        for row, label in zip(matrix, labels):
            singular.partial_fit(row, label)
        batched = CentroidClassifier(DIMENSION)
        batched.partial_fit_many(matrix, labels)
        assert batched.classes == singular.classes
        for label in singular.classes:
            assert np.array_equal(
                batched.memory._accumulators[label],
                singular.memory._accumulators[label],
            )
