"""Property-based tests (hypothesis) for the HDC algebra.

These tests check the algebraic invariants that the GraphHD encoding relies
on: binding is a commutative, associative, self-inverse group operation on
bipolar vectors; bundling is permutation-invariant and majority-dominated;
permutation is a bijection; similarity metrics are symmetric and bounded.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc.hypervector import random_bipolar, random_hypervectors
from repro.hdc.operations import (
    bind,
    bundle,
    cosine_similarity,
    hamming_similarity,
    normalize_hard,
    permute,
)

DIMENSION = 256


def bipolar_vectors(count: int = 1):
    """Strategy producing one or more random bipolar hypervectors via a seed."""
    return st.integers(min_value=0, max_value=2**31 - 1).map(
        lambda seed: random_hypervectors(count, DIMENSION, rng=seed)
    )


class TestBindingAlgebra:
    @given(bipolar_vectors(2))
    @settings(max_examples=50, deadline=None)
    def test_commutative(self, vectors):
        assert np.array_equal(bind(vectors[0], vectors[1]), bind(vectors[1], vectors[0]))

    @given(bipolar_vectors(3))
    @settings(max_examples=50, deadline=None)
    def test_associative(self, vectors):
        a, b, c = vectors
        assert np.array_equal(bind(bind(a, b), c), bind(a, bind(b, c)))

    @given(bipolar_vectors(2))
    @settings(max_examples=50, deadline=None)
    def test_self_inverse(self, vectors):
        a, b = vectors
        assert np.array_equal(bind(bind(a, b), b), a)

    @given(bipolar_vectors(1))
    @settings(max_examples=50, deadline=None)
    def test_binding_with_self_is_identity_element(self, vectors):
        a = vectors[0]
        identity = bind(a, a)
        assert np.all(identity == 1)

    @given(bipolar_vectors(2))
    @settings(max_examples=50, deadline=None)
    def test_result_stays_bipolar(self, vectors):
        bound = bind(vectors[0], vectors[1])
        assert set(np.unique(bound)) <= {-1, 1}

    @given(bipolar_vectors(3))
    @settings(max_examples=50, deadline=None)
    def test_binding_preserves_similarity(self, vectors):
        a, b, key = vectors
        before = cosine_similarity(a, b)
        after = cosine_similarity(bind(a, key), bind(b, key))
        assert np.isclose(before, after)


class TestBundlingProperties:
    @given(bipolar_vectors(5), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_permutation_invariant(self, vectors, pyrandom):
        order = list(range(len(vectors)))
        pyrandom.shuffle(order)
        original = bundle(vectors, rng=0)
        shuffled = bundle(vectors[order], rng=0)
        assert np.array_equal(original, shuffled)

    @given(bipolar_vectors(7))
    @settings(max_examples=30, deadline=None)
    def test_odd_bundle_has_no_ties(self, vectors):
        accumulator = bundle(vectors, normalize=False)
        assert not np.any(accumulator == 0)

    @given(bipolar_vectors(5))
    @settings(max_examples=30, deadline=None)
    def test_bundle_is_closer_to_members_than_to_random(self, vectors):
        bundled = bundle(vectors, rng=0)
        member_similarity = np.mean(
            [cosine_similarity(bundled, vector) for vector in vectors]
        )
        unrelated = random_bipolar(DIMENSION, rng=999_999)
        assert member_similarity > cosine_similarity(bundled, unrelated)

    @given(bipolar_vectors(1))
    @settings(max_examples=30, deadline=None)
    def test_majority_of_identical_copies_is_identity(self, vectors):
        vector = vectors[0]
        assert np.array_equal(bundle([vector, vector, vector]), vector)

    @given(bipolar_vectors(4), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_normalize_hard_sign_correct(self, vectors, seed):
        accumulator = vectors.astype(np.int64).sum(axis=0)
        normalized = normalize_hard(accumulator, rng=seed)
        nonzero = accumulator != 0
        assert np.array_equal(
            normalized[nonzero], np.sign(accumulator[nonzero]).astype(np.int8)
        )
        assert set(np.unique(normalized)) <= {-1, 1}


class TestPermutationProperties:
    @given(bipolar_vectors(1), st.integers(min_value=-300, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_invertible(self, vectors, shift):
        vector = vectors[0]
        assert np.array_equal(permute(permute(vector, shift), -shift), vector)

    @given(bipolar_vectors(1), st.integers(min_value=0, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_composition(self, vectors, shift):
        vector = vectors[0]
        assert np.array_equal(
            permute(permute(vector, shift), shift), permute(vector, 2 * shift)
        )

    @given(bipolar_vectors(1), st.integers(min_value=-300, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_preserves_component_multiset(self, vectors, shift):
        vector = vectors[0]
        assert sorted(permute(vector, shift)) == sorted(vector)


class TestSimilarityProperties:
    @given(bipolar_vectors(2))
    @settings(max_examples=50, deadline=None)
    def test_cosine_symmetric_and_bounded(self, vectors):
        a, b = vectors
        forward = cosine_similarity(a, b)
        backward = cosine_similarity(b, a)
        assert np.isclose(forward, backward)
        assert -1.0 - 1e-9 <= forward <= 1.0 + 1e-9

    @given(bipolar_vectors(2))
    @settings(max_examples=50, deadline=None)
    def test_hamming_symmetric_and_bounded(self, vectors):
        a, b = vectors
        assert hamming_similarity(a, b) == hamming_similarity(b, a)
        assert 0.0 <= hamming_similarity(a, b) <= 1.0

    @given(bipolar_vectors(1))
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_is_maximal(self, vectors):
        a = vectors[0]
        assert cosine_similarity(a, a) == 1.0
        assert hamming_similarity(a, a) == 1.0

    @given(bipolar_vectors(2))
    @settings(max_examples=50, deadline=None)
    def test_cosine_hamming_relation_for_bipolar(self, vectors):
        # For bipolar vectors cosine = 2 * hamming - 1.
        a, b = vectors
        assert np.isclose(cosine_similarity(a, b), 2 * hamming_similarity(a, b) - 1)
