"""Property-based tests: carry-save bit-slicing equals component-space math.

The bit-sliced kernels of :mod:`repro.hdc.bitslice` are word-space
re-implementations of integer accumulation and the majority vote.  Every
property here pins a kernel to its dense reference over randomized inputs —
arbitrary segment layouts, tie-heavy accumulators, odd and even vector
counts, and dimensions that are not multiples of 64 (partial final words).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc.backend import pack_bipolar, unpack_to_bipolar
from repro.hdc.bitslice import (
    BitSliceAccumulator,
    bitslice_reduce,
    bitslice_segment_reduce,
    bitslice_to_counts,
    compare_with_threshold,
    counts_to_bitslice,
    majority_vote_words,
    rotate_components,
)
from repro.hdc.hypervector import random_hypervectors
from repro.hdc.operations import normalize_hard
from repro.hdc.training_state import TrainingState

#: Dimensions deliberately include non-multiples of 64 to cover padding.
dimensions = st.sampled_from([64, 100, 127, 256, 300])
seeds = st.integers(min_value=0, max_value=2**31 - 1)
counts = st.integers(min_value=0, max_value=40)


def negative_counts(matrix):
    """Dense reference: per-component count of -1 entries."""
    return (matrix < 0).astype(np.int64).sum(axis=0)


@given(seed=seeds, dimension=dimensions, count=counts)
@settings(max_examples=50, deadline=None)
def test_reduce_counts_negative_bits(seed, dimension, count):
    matrix = random_hypervectors(count, dimension, rng=seed)
    planes = bitslice_reduce(pack_bipolar(matrix))
    assert np.array_equal(
        bitslice_to_counts(planes, dimension), negative_counts(matrix)
    )


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=50, deadline=None)
def test_segment_reduce_arbitrary_layouts(seed, dimension):
    """Arbitrary sorted run lengths — singletons, power-of-two and odd runs."""
    rng = np.random.default_rng(seed)
    run_lengths = rng.integers(1, 9, size=rng.integers(1, 8))
    ids = np.repeat(np.arange(len(run_lengths)), run_lengths)
    matrix = random_hypervectors(len(ids), dimension, rng=seed)
    unique_ids, planes, row_counts = bitslice_segment_reduce(
        pack_bipolar(matrix), ids
    )
    assert np.array_equal(unique_ids, np.arange(len(run_lengths)))
    assert np.array_equal(row_counts, run_lengths)
    for index, segment in enumerate(unique_ids):
        assert np.array_equal(
            bitslice_to_counts(planes[index], dimension),
            negative_counts(matrix[ids == segment]),
        )


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=50, deadline=None)
def test_counts_roundtrip(seed, dimension):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 1000, size=(3, dimension))
    planes = counts_to_bitslice(counts, dimension)
    assert np.array_equal(bitslice_to_counts(planes, dimension), counts)


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=50, deadline=None)
def test_compare_with_threshold_matches_integers(seed, dimension):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 64, size=(4, dimension))
    thresholds = rng.integers(0, 64, size=4)
    greater, equal = compare_with_threshold(
        counts_to_bitslice(counts, dimension), thresholds
    )
    greater_bits = unpack_to_bipolar(greater, dimension) < 0
    equal_bits = unpack_to_bipolar(equal, dimension) < 0
    assert np.array_equal(greater_bits, counts > thresholds[:, None])
    # The equal mask may also be set on padding bits; only real components
    # are contractually meaningful, which is what unpacking checks.
    assert np.array_equal(equal_bits, counts == thresholds[:, None])


@given(seed=seeds, dimension=dimensions, count=st.integers(2, 16))
@settings(max_examples=50, deadline=None)
def test_majority_vote_matches_dense_normalize(seed, dimension, count):
    """Bit-for-bit vote parity for odd and even counts, rng tie-breaking."""
    matrix = random_hypervectors(count, dimension, rng=seed)
    planes = bitslice_reduce(pack_bipolar(matrix))
    summed = matrix.astype(np.int64).sum(axis=0)
    assert np.array_equal(
        majority_vote_words(planes, count, dimension, rng=seed),
        pack_bipolar(normalize_hard(summed, rng=seed)),
    )


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=50, deadline=None)
def test_majority_vote_tie_heavy_inputs(seed, dimension):
    """All-tie accumulators: a + (-a) makes every component an exact tie."""
    base = random_hypervectors(1, dimension, rng=seed)[0]
    matrix = np.stack([base, -base, base, -base])
    planes = bitslice_reduce(pack_bipolar(matrix))
    # Deterministic tie-breaker path.
    breaker = random_hypervectors(1, dimension, rng=seed + 1)[0]
    assert np.array_equal(
        majority_vote_words(planes, 4, dimension, tie_breaker=breaker),
        pack_bipolar(breaker),
    )
    # Random path consumes the same stream as the dense vote.
    assert np.array_equal(
        majority_vote_words(planes, 4, dimension, rng=seed),
        pack_bipolar(normalize_hard(np.zeros(dimension, np.int64), rng=seed)),
    )


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=50, deadline=None)
def test_rotation_matches_dense_roll(seed, dimension):
    vector = random_hypervectors(1, dimension, rng=seed)[0]
    packed = pack_bipolar(vector)
    for shift in (0, 1, -1, 63, 64, 65, -200, dimension - 1, dimension, 500):
        assert np.array_equal(
            rotate_components(packed, dimension, shift),
            pack_bipolar(np.roll(vector, shift)),
        ), f"shift={shift}"


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=30, deadline=None)
def test_streaming_accumulator_matches_batch(seed, dimension):
    """Chunked add + merge equals one-shot reduction, and round-trips."""
    rng = np.random.default_rng(seed)
    matrix = random_hypervectors(int(rng.integers(1, 30)), dimension, rng=seed)
    packed = pack_bipolar(matrix)
    split = int(rng.integers(0, matrix.shape[0] + 1))
    left = BitSliceAccumulator(dimension).add(packed[:split])
    right = BitSliceAccumulator(dimension).add(packed[split:])
    left.merge(right)
    expected = matrix.astype(np.int64).sum(axis=0)
    assert left.total == matrix.shape[0]
    assert np.array_equal(left.to_accumulator(), expected)
    rebuilt = BitSliceAccumulator.from_accumulator(
        expected, matrix.shape[0], dimension
    )
    assert np.array_equal(rebuilt.to_counts(), left.to_counts())
    assert np.array_equal(
        left.majority_vote(rng=seed),
        pack_bipolar(normalize_hard(expected, rng=seed)),
    )


@given(seed=seeds, dimension=dimensions)
@settings(max_examples=30, deadline=None)
def test_training_state_add_bitslice_boundary(seed, dimension):
    """Committing a word-space accumulator equals batch add_encodings."""
    matrix = random_hypervectors(9, dimension, rng=seed)
    packed = pack_bipolar(matrix)
    labels = ["a"] * 5 + ["b"] * 4

    batch = TrainingState(dimension, backend="packed").add_encodings(
        packed, labels
    )
    streamed = TrainingState(dimension, backend="packed")
    streamed.add_bitslice(
        "a", BitSliceAccumulator(dimension).add(packed[:5])
    )
    streamed.add_bitslice(
        "b", BitSliceAccumulator(dimension).add(packed[5:])
    )
    assert streamed == batch


def test_accumulator_from_invalid_sum_raises():
    with pytest.raises(ValueError):
        # Parity mismatch: 3 vectors cannot sum to an even component.
        BitSliceAccumulator.from_accumulator(np.full(64, 2), 3, 64)
    with pytest.raises(ValueError):
        # Out of range: |sum| cannot exceed the vector count.
        BitSliceAccumulator.from_accumulator(np.full(64, 5), 3, 64)
