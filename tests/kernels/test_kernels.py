"""Tests for the graph kernels (vertex histogram, shortest path, 1-WL, WL-OA)."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.kernels.base import normalize_gram, sparse_feature_gram
from repro.kernels.shortest_path import ShortestPathKernel, breadth_first_distances
from repro.kernels.vertex_histogram import VertexHistogramKernel, vertex_histogram
from repro.kernels.wl_optimal_assignment import WLOptimalAssignmentKernel
from repro.kernels.wl_subtree import WLSubtreeKernel

ALL_KERNELS = [
    VertexHistogramKernel,
    ShortestPathKernel,
    WLSubtreeKernel,
    WLOptimalAssignmentKernel,
]


class TestSparseFeatureGram:
    def test_symmetric_gram(self):
        features = [{1: 2.0, 2: 1.0}, {1: 1.0}, {3: 4.0}]
        gram = sparse_feature_gram(features)
        assert gram.shape == (3, 3)
        assert np.array_equal(gram, gram.T)
        assert gram[0, 0] == 5.0
        assert gram[0, 1] == 2.0
        assert gram[0, 2] == 0.0

    def test_cross_gram(self):
        rows = [{1: 1.0, 2: 2.0}]
        cols = [{2: 3.0}, {1: 1.0}]
        gram = sparse_feature_gram(rows, cols)
        assert gram.shape == (1, 2)
        assert gram[0, 0] == 6.0
        assert gram[0, 1] == 1.0


class TestNormalizeGram:
    def test_unit_diagonal(self):
        gram = np.array([[4.0, 2.0], [2.0, 9.0]])
        normalized = normalize_gram(gram)
        assert np.allclose(np.diag(normalized), 1.0)
        assert normalized[0, 1] == pytest.approx(2.0 / 6.0)

    def test_zero_diagonal_handled(self):
        gram = np.array([[0.0, 0.0], [0.0, 4.0]])
        normalized = normalize_gram(gram)
        assert not np.any(np.isnan(normalized))

    def test_cross_gram_requires_diagonals(self):
        with pytest.raises(ValueError):
            normalize_gram(np.zeros((2, 3)))

    def test_cross_gram_with_diagonals(self):
        cross = np.array([[2.0, 0.0]])
        normalized = normalize_gram(cross, np.array([4.0]), np.array([1.0, 9.0]))
        assert normalized[0, 0] == pytest.approx(1.0)


class TestBreadthFirstDistances:
    def test_path_distances(self, path_graph):
        distances = breadth_first_distances(path_graph, 0)
        assert list(distances) == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self):
        graph = Graph(4, [(0, 1)])
        distances = breadth_first_distances(graph, 0)
        assert distances[2] == -1
        assert distances[3] == -1


class TestVertexHistogram:
    def test_uses_degrees_when_unlabelled(self, star_graph):
        histogram = vertex_histogram(star_graph)
        assert histogram == {5: 1.0, 1: 5.0}

    def test_uses_labels_when_present(self, labelled_graph):
        histogram = vertex_histogram(labelled_graph)
        assert sum(histogram.values()) == labelled_graph.num_vertices
        assert len(histogram) == 3  # C, N, O


@pytest.mark.parametrize("kernel_class", ALL_KERNELS)
class TestKernelContract:
    """Properties every kernel implementation must satisfy."""

    def test_gram_is_symmetric_psd(self, kernel_class, small_graph_collection):
        kernel = kernel_class()
        gram = kernel.fit_transform(small_graph_collection)
        assert gram.shape == (6, 6)
        assert np.allclose(gram, gram.T)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-8

    def test_transform_matches_fit_transform(self, kernel_class, small_graph_collection):
        kernel = kernel_class()
        gram = kernel.fit_transform(small_graph_collection)
        cross = kernel.transform(small_graph_collection)
        assert np.allclose(cross, gram)

    def test_self_similarity_matches_diagonal(self, kernel_class, small_graph_collection):
        kernel = kernel_class()
        gram = kernel.fit_transform(small_graph_collection)
        for index, graph in enumerate(small_graph_collection):
            assert kernel.self_similarity(graph) == pytest.approx(gram[index, index])

    def test_isomorphic_graphs_have_equal_self_similarity(self, kernel_class):
        first = Graph(4, [(0, 1), (1, 2), (2, 3)])
        second = Graph(4, [(3, 2), (2, 1), (1, 0)])
        kernel = kernel_class()
        gram = kernel.fit_transform([first, second])
        assert gram[0, 0] == pytest.approx(gram[1, 1])
        # An isomorphic pair is as similar to each other as to themselves.
        assert gram[0, 1] == pytest.approx(gram[0, 0])

    def test_transform_before_fit_rejected(self, kernel_class, small_graph_collection):
        with pytest.raises(RuntimeError):
            kernel_class().transform(small_graph_collection)

    def test_clone_is_unfitted_copy(self, kernel_class):
        kernel = kernel_class()
        clone = kernel.clone()
        assert type(clone) is type(kernel)
        assert clone is not kernel


class TestWLSubtreeKernel:
    def test_iteration_grid_matches_paper(self):
        assert WLSubtreeKernel.grid["iterations"] == (0, 1, 2, 3, 4, 5)

    def test_zero_iterations_counts_vertices(self, small_graph_collection):
        kernel = WLSubtreeKernel(iterations=0)
        gram = kernel.fit_transform(small_graph_collection)
        for i, graph_i in enumerate(small_graph_collection):
            for j, graph_j in enumerate(small_graph_collection):
                assert gram[i, j] == graph_i.num_vertices * graph_j.num_vertices

    def test_more_iterations_distinguish_structure(self):
        path = Graph(6, [(i, i + 1) for i in range(5)])
        star = Graph(6, [(0, i) for i in range(1, 6)])
        shallow = WLSubtreeKernel(iterations=0)
        deep = WLSubtreeKernel(iterations=3)
        gram_shallow = normalize_gram(shallow.fit_transform([path, star]))
        gram_deep = normalize_gram(deep.fit_transform([path, star]))
        assert gram_deep[0, 1] < gram_shallow[0, 1]

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            WLSubtreeKernel(iterations=-1)

    def test_transform_on_new_graphs(self, small_graph_collection):
        kernel = WLSubtreeKernel(iterations=2)
        kernel.fit_transform(small_graph_collection[:4])
        cross = kernel.transform(small_graph_collection[4:])
        assert cross.shape == (2, 4)
        assert np.all(cross >= 0)


class TestWLOptimalAssignmentKernel:
    def test_self_similarity_formula(self, path_graph):
        kernel = WLOptimalAssignmentKernel(iterations=3)
        assert kernel.self_similarity(path_graph) == 4 * path_graph.num_vertices

    def test_bounded_by_smaller_graph(self):
        small = Graph(3, [(0, 1), (1, 2)])
        large = Graph(10, [(i, i + 1) for i in range(9)])
        kernel = WLOptimalAssignmentKernel(iterations=2)
        gram = kernel.fit_transform([small, large])
        # The optimal assignment can match at most min(|V1|, |V2|) vertices per round.
        assert gram[0, 1] <= 3 * 3

    def test_histogram_intersection_bounded_by_self_similarity(
        self, small_graph_collection
    ):
        kernel = WLOptimalAssignmentKernel(iterations=2)
        gram = kernel.fit_transform(small_graph_collection)
        diagonal = np.diag(gram)
        for i in range(len(small_graph_collection)):
            for j in range(len(small_graph_collection)):
                assert gram[i, j] <= min(diagonal[i], diagonal[j]) + 1e-9

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            WLOptimalAssignmentKernel(iterations=-1)

    def test_transform_on_new_graphs(self, small_graph_collection):
        kernel = WLOptimalAssignmentKernel(iterations=2)
        kernel.fit_transform(small_graph_collection[:4])
        cross = kernel.transform(small_graph_collection[4:])
        assert cross.shape == (2, 4)


class TestShortestPathKernel:
    def test_features_count_pairs(self, path_graph):
        kernel = ShortestPathKernel()
        value = kernel.self_similarity(path_graph)
        # Path on 5 vertices: distances 1 (x4), 2 (x3), 3 (x2), 4 (x1).
        assert value == 4 * 4 + 3 * 3 + 2 * 2 + 1 * 1

    def test_max_distance_truncation(self, path_graph):
        truncated = ShortestPathKernel(max_distance=1)
        assert truncated.self_similarity(path_graph) == 16.0

    def test_disconnected_pairs_ignored(self):
        graph = Graph(4, [(0, 1)])
        kernel = ShortestPathKernel()
        assert kernel.self_similarity(graph) == 1.0
