"""Tests for the kernel + SVM graph classifier with grid search."""

import numpy as np
import pytest

from repro.kernels.base import DEFAULT_C_GRID, KernelClassifier
from repro.kernels.vertex_histogram import VertexHistogramKernel
from repro.kernels.wl_optimal_assignment import WLOptimalAssignmentKernel
from repro.kernels.wl_subtree import WLSubtreeKernel


class TestDefaults:
    def test_c_grid_matches_paper(self):
        assert DEFAULT_C_GRID == tuple(10.0**e for e in range(-3, 4))

    def test_empty_c_grid_rejected(self):
        with pytest.raises(ValueError):
            KernelClassifier(WLSubtreeKernel(), c_grid=())


class TestFitPredict:
    @pytest.fixture
    def small_kernel_classifier(self):
        kernel = WLSubtreeKernel()
        kernel.grid = {"iterations": (1, 2)}
        return KernelClassifier(kernel, c_grid=(1.0, 10.0), selection_folds=2, seed=0)

    def test_learns_separable_dataset(self, two_class_dataset, small_kernel_classifier):
        graphs = two_class_dataset.graphs
        labels = two_class_dataset.labels
        train_graphs, train_labels = graphs[:20], labels[:20]
        test_graphs, test_labels = graphs[20:], labels[20:]
        small_kernel_classifier.fit(train_graphs, train_labels)
        accuracy = small_kernel_classifier.score(test_graphs, test_labels)
        assert accuracy > 0.8

    def test_best_parameters_recorded(self, two_class_dataset, small_kernel_classifier):
        small_kernel_classifier.fit(two_class_dataset.graphs, two_class_dataset.labels)
        parameters = small_kernel_classifier.best_parameters_
        assert parameters is not None
        assert parameters["C"] in (1.0, 10.0)
        assert parameters["iterations"] in (1, 2)
        assert 0.0 <= parameters["cv_accuracy"] <= 1.0

    def test_predict_before_fit_rejected(self, small_kernel_classifier, two_class_dataset):
        with pytest.raises(RuntimeError):
            small_kernel_classifier.predict(two_class_dataset.graphs)

    def test_length_mismatch_rejected(self, small_kernel_classifier, two_class_dataset):
        with pytest.raises(ValueError):
            small_kernel_classifier.fit(
                two_class_dataset.graphs, two_class_dataset.labels[:-1]
            )

    def test_works_without_normalization(self, two_class_dataset):
        kernel = WLSubtreeKernel(iterations=2)
        kernel.grid = {}
        classifier = KernelClassifier(
            kernel, c_grid=(1.0,), normalize=False, selection_folds=2, seed=0
        )
        classifier.fit(two_class_dataset.graphs[:20], two_class_dataset.labels[:20])
        accuracy = classifier.score(
            two_class_dataset.graphs[20:], two_class_dataset.labels[20:]
        )
        assert accuracy >= 0.5

    def test_wl_oa_classifier(self, two_class_dataset):
        kernel = WLOptimalAssignmentKernel()
        kernel.grid = {"iterations": (1,)}
        classifier = KernelClassifier(kernel, c_grid=(1.0,), selection_folds=2, seed=0)
        classifier.fit(two_class_dataset.graphs[:20], two_class_dataset.labels[:20])
        accuracy = classifier.score(
            two_class_dataset.graphs[20:], two_class_dataset.labels[20:]
        )
        assert accuracy > 0.7

    def test_vertex_histogram_classifier_runs(self, random_graph_dataset):
        classifier = KernelClassifier(
            VertexHistogramKernel(), c_grid=(1.0,), selection_folds=2, seed=0
        )
        classifier.fit(random_graph_dataset.graphs, random_graph_dataset.labels)
        predictions = classifier.predict(random_graph_dataset.graphs)
        assert len(predictions) == len(random_graph_dataset)
        assert set(predictions) <= set(random_graph_dataset.labels)

    def test_multiclass_support(self):
        # Three classes distinguished by density of small random graphs.
        from repro.graphs.generators import erdos_renyi_graph

        rng = np.random.default_rng(0)
        graphs, labels = [], []
        for index in range(30):
            label = index % 3
            probability = (0.1, 0.4, 0.8)[label]
            graphs.append(erdos_renyi_graph(12, probability, rng=rng, graph_label=label))
            labels.append(label)
        kernel = WLSubtreeKernel()
        kernel.grid = {"iterations": (1,)}
        classifier = KernelClassifier(kernel, c_grid=(1.0,), selection_folds=2, seed=0)
        classifier.fit(graphs, labels)
        assert classifier.score(graphs, labels) > 0.7
