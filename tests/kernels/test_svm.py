"""Tests for the SMO-trained SVM on precomputed kernels."""

import numpy as np
import pytest

from repro.kernels.svm import SVC, OneVsRestSVC


def linear_gram(features):
    features = np.asarray(features, dtype=np.float64)
    return features @ features.T


def linear_cross_gram(queries, references):
    return np.asarray(queries, dtype=np.float64) @ np.asarray(references, dtype=np.float64).T


@pytest.fixture
def separable_data():
    rng = np.random.default_rng(0)
    positive = rng.normal(loc=+2.0, scale=0.5, size=(20, 2))
    negative = rng.normal(loc=-2.0, scale=0.5, size=(20, 2))
    features = np.vstack([positive, negative])
    targets = np.array([1.0] * 20 + [-1.0] * 20)
    return features, targets


class TestSVC:
    def test_separable_training_accuracy(self, separable_data):
        features, targets = separable_data
        gram = linear_gram(features)
        svm = SVC(C=1.0, seed=0).fit(gram, targets)
        predictions = svm.predict(gram)
        assert np.mean(predictions == targets) > 0.95

    def test_generalizes_to_new_points(self, separable_data):
        features, targets = separable_data
        gram = linear_gram(features)
        svm = SVC(C=1.0, seed=0).fit(gram, targets)
        queries = np.array([[3.0, 3.0], [-3.0, -3.0]])
        cross = linear_cross_gram(queries, features)
        predictions = svm.predict(cross)
        assert predictions[0] == 1.0
        assert predictions[1] == -1.0

    def test_decision_function_sign_matches_predictions(self, separable_data):
        features, targets = separable_data
        gram = linear_gram(features)
        svm = SVC(C=1.0, seed=0).fit(gram, targets)
        scores = svm.decision_function(gram)
        predictions = svm.predict(gram)
        assert np.all((scores >= 0) == (predictions == 1.0))

    def test_support_vectors_subset(self, separable_data):
        features, targets = separable_data
        gram = linear_gram(features)
        svm = SVC(C=1.0, seed=0).fit(gram, targets)
        support = svm.support_indices_
        assert 0 < len(support) <= len(targets)

    def test_single_query_row_accepted(self, separable_data):
        features, targets = separable_data
        svm = SVC(C=1.0, seed=0).fit(linear_gram(features), targets)
        row = linear_cross_gram(features[:1], features)[0]
        assert svm.decision_function(row).shape == (1,)

    def test_invalid_c_rejected(self):
        with pytest.raises(ValueError):
            SVC(C=0.0)

    def test_non_square_gram_rejected(self):
        with pytest.raises(ValueError):
            SVC().fit(np.zeros((3, 4)), [1, -1, 1])

    def test_bad_targets_rejected(self):
        with pytest.raises(ValueError):
            SVC().fit(np.eye(3), [0, 1, 2])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SVC().fit(np.eye(3), [1, -1])

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            SVC().decision_function(np.zeros((1, 3)))

    def test_cross_gram_column_mismatch_rejected(self, separable_data):
        features, targets = separable_data
        svm = SVC(seed=0).fit(linear_gram(features), targets)
        with pytest.raises(ValueError):
            svm.decision_function(np.zeros((2, 7)))

    def test_soft_margin_on_overlapping_classes(self):
        # Overlapping classes: training must still terminate and produce a
        # model that beats chance on the training data.
        rng = np.random.default_rng(1)
        features = rng.normal(size=(30, 2))
        targets = np.where(features[:, 0] + 0.1 * rng.normal(size=30) > 0, 1.0, -1.0)
        gram = linear_gram(features)
        svm = SVC(C=1.0, seed=0).fit(gram, targets)
        accuracy = np.mean(svm.predict(gram) == targets)
        assert accuracy > 0.6


class TestOneVsRestSVC:
    def test_binary_problem(self, separable_data):
        features, targets = separable_data
        labels = ["pos" if target > 0 else "neg" for target in targets]
        gram = linear_gram(features)
        classifier = OneVsRestSVC(C=1.0).fit(gram, labels)
        predictions = classifier.predict(gram)
        accuracy = np.mean([p == a for p, a in zip(predictions, labels)])
        assert accuracy > 0.95
        assert set(classifier.classes_) == {"pos", "neg"}

    def test_multiclass_problem(self):
        rng = np.random.default_rng(0)
        centers = {0: (4, 0), 1: (-4, 0), 2: (0, 4)}
        features, labels = [], []
        for label, center in centers.items():
            points = rng.normal(loc=center, scale=0.5, size=(15, 2))
            features.append(points)
            labels.extend([label] * 15)
        features = np.vstack(features)
        gram = linear_gram(features)
        classifier = OneVsRestSVC(C=1.0).fit(gram, labels)
        predictions = classifier.predict(gram)
        accuracy = np.mean([p == a for p, a in zip(predictions, labels)])
        assert accuracy > 0.9
        assert len(classifier._machines) == 3

    def test_decision_function_shape(self, separable_data):
        features, targets = separable_data
        labels = [int(target) for target in targets]
        gram = linear_gram(features)
        classifier = OneVsRestSVC().fit(gram, labels)
        scores = classifier.decision_function(gram)
        assert scores.shape == (40, 2)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            OneVsRestSVC().fit(np.eye(3), ["a", "a", "a"])

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            OneVsRestSVC().decision_function(np.zeros((1, 3)))
