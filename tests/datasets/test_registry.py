"""Tests for the dataset registry."""

import os

import pytest

from repro.datasets.registry import TUDATASET_ROOT_ENV, available_datasets, load_dataset
from repro.datasets.tudataset import save_tudataset
from repro.datasets.synthetic import make_benchmark_dataset


class TestRegistry:
    def test_available_datasets(self):
        assert available_datasets() == ["DD", "ENZYMES", "MUTAG", "NCI1", "PROTEINS", "PTC_FM"]

    def test_load_synthetic_by_default(self):
        dataset = load_dataset("MUTAG", scale=0.2, seed=0)
        assert dataset.name == "MUTAG"
        assert len(dataset) > 10

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("REDDIT")

    def test_case_insensitive(self):
        dataset = load_dataset("ptc_fm", scale=0.2, seed=0)
        assert dataset.name == "PTC_FM"

    def test_loads_real_data_when_available(self, tmp_path, monkeypatch):
        # Write a tiny dataset in TUDataset format and point the registry at it.
        original = make_benchmark_dataset("MUTAG", scale=0.05, seed=1)
        directory = tmp_path / "MUTAG"
        directory.mkdir()
        save_tudataset(original, str(directory), "MUTAG")
        monkeypatch.setenv(TUDATASET_ROOT_ENV, str(tmp_path))
        loaded = load_dataset("MUTAG")
        assert len(loaded) == len(original)

    def test_prefer_real_false_ignores_env(self, tmp_path, monkeypatch):
        original = make_benchmark_dataset("MUTAG", scale=0.05, seed=1)
        directory = tmp_path / "MUTAG"
        directory.mkdir()
        save_tudataset(original, str(directory), "MUTAG")
        monkeypatch.setenv(TUDATASET_ROOT_ENV, str(tmp_path))
        synthetic = load_dataset("MUTAG", scale=0.1, seed=0, prefer_real=False)
        assert len(synthetic) != len(original)

    def test_missing_real_data_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TUDATASET_ROOT_ENV, str(tmp_path))
        dataset = load_dataset("ENZYMES", scale=0.1, seed=0)
        assert dataset.name == "ENZYMES"
