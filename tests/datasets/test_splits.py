"""Tests for the stratified K-fold splitter and the train/test split."""

import numpy as np
import pytest

from repro.datasets.splits import StratifiedKFold, train_test_split


def make_labels(per_class: dict) -> list:
    labels = []
    for label, count in per_class.items():
        labels.extend([label] * count)
    rng = np.random.default_rng(0)
    rng.shuffle(labels)
    return labels


class TestStratifiedKFold:
    def test_every_sample_in_exactly_one_test_fold(self):
        labels = make_labels({0: 30, 1: 20})
        splitter = StratifiedKFold(5, seed=0)
        seen = []
        for _, test_indices in splitter.split(labels):
            seen.extend(test_indices.tolist())
        assert sorted(seen) == list(range(50))

    def test_train_and_test_disjoint(self):
        labels = make_labels({0: 25, 1: 25})
        for train_indices, test_indices in StratifiedKFold(5, seed=0).split(labels):
            assert set(train_indices).isdisjoint(set(test_indices))
            assert len(train_indices) + len(test_indices) == 50

    def test_stratification_preserved(self):
        labels = make_labels({"a": 40, "b": 20})
        for _, test_indices in StratifiedKFold(10, seed=0).split(labels):
            test_labels = [labels[i] for i in test_indices]
            assert test_labels.count("a") == 4
            assert test_labels.count("b") == 2

    def test_number_of_folds(self):
        labels = make_labels({0: 15, 1: 15})
        splits = list(StratifiedKFold(3, seed=0).split(labels))
        assert len(splits) == 3
        assert StratifiedKFold(3).get_n_splits() == 3

    def test_class_smaller_than_folds_rejected(self):
        labels = make_labels({0: 20, 1: 3})
        with pytest.raises(ValueError):
            list(StratifiedKFold(5, seed=0).split(labels))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            list(StratifiedKFold(10, seed=0).split([0, 1, 0]))

    def test_at_least_two_folds_required(self):
        with pytest.raises(ValueError):
            StratifiedKFold(1)

    def test_reproducible_with_seed(self):
        labels = make_labels({0: 20, 1: 20})
        first = [test.tolist() for _, test in StratifiedKFold(4, seed=9).split(labels)]
        second = [test.tolist() for _, test in StratifiedKFold(4, seed=9).split(labels)]
        assert first == second

    def test_different_seeds_differ(self):
        labels = make_labels({0: 20, 1: 20})
        first = [test.tolist() for _, test in StratifiedKFold(4, seed=1).split(labels)]
        second = [test.tolist() for _, test in StratifiedKFold(4, seed=2).split(labels)]
        assert first != second

    def test_no_shuffle_is_deterministic(self):
        labels = make_labels({0: 12, 1: 12})
        first = [test.tolist() for _, test in StratifiedKFold(3, shuffle=False).split(labels)]
        second = [test.tolist() for _, test in StratifiedKFold(3, shuffle=False).split(labels)]
        assert first == second

    def test_ten_folds_like_the_paper(self):
        labels = make_labels({0: 100, 1: 88})
        folds = list(StratifiedKFold(10, seed=0).split(labels))
        assert len(folds) == 10
        test_sizes = [len(test) for _, test in folds]
        assert max(test_sizes) - min(test_sizes) <= 2


class TestTrainTestSplit:
    def test_partition(self):
        labels = make_labels({0: 40, 1: 40})
        train_indices, test_indices = train_test_split(labels, test_fraction=0.25, seed=0)
        assert len(train_indices) + len(test_indices) == 80
        assert set(train_indices).isdisjoint(set(test_indices))

    def test_fraction_respected(self):
        labels = make_labels({0: 50, 1: 50})
        _, test_indices = train_test_split(labels, test_fraction=0.2, seed=0)
        assert len(test_indices) == 20

    def test_stratified(self):
        labels = make_labels({"a": 30, "b": 60})
        _, test_indices = train_test_split(labels, test_fraction=0.2, seed=0)
        test_labels = [labels[i] for i in test_indices]
        assert test_labels.count("a") == 6
        assert test_labels.count("b") == 12

    def test_every_class_represented_in_train(self):
        labels = make_labels({0: 3, 1: 3})
        train_indices, _ = train_test_split(labels, test_fraction=0.4, seed=0)
        train_labels = {labels[i] for i in train_indices}
        assert train_labels == {0, 1}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split([0, 1], test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split([0, 1], test_fraction=1.0)

    def test_reproducible(self):
        labels = make_labels({0: 20, 1: 20})
        first = train_test_split(labels, seed=4)
        second = train_test_split(labels, seed=4)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])
