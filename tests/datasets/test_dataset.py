"""Tests for the GraphDataset container."""

import numpy as np
import pytest

from repro.datasets.dataset import GraphDataset
from repro.graphs.graph import Graph


@pytest.fixture
def dataset(small_graph_collection):
    return GraphDataset("toy", small_graph_collection)


class TestConstruction:
    def test_requires_at_least_one_graph(self):
        with pytest.raises(ValueError):
            GraphDataset("empty", [])

    def test_requires_labels(self):
        with pytest.raises(ValueError):
            GraphDataset("unlabelled", [Graph(3, [(0, 1)])])

    def test_length_and_iteration(self, dataset, small_graph_collection):
        assert len(dataset) == len(small_graph_collection)
        assert list(dataset) == small_graph_collection


class TestAccess:
    def test_labels_property(self, dataset):
        assert dataset.labels == [0, 1, 0, 1, 0, 1]

    def test_classes_sorted(self, dataset):
        assert dataset.classes == [0, 1]
        assert dataset.num_classes == 2

    def test_class_counts(self, dataset):
        assert dataset.class_counts() == {0: 3, 1: 3}

    def test_indexing_returns_graph(self, dataset, small_graph_collection):
        assert dataset[0] is small_graph_collection[0]

    def test_slicing_returns_dataset(self, dataset):
        subset = dataset[:4]
        assert isinstance(subset, GraphDataset)
        assert len(subset) == 4
        assert subset.name == dataset.name


class TestSubset:
    def test_subset_selection(self, dataset):
        subset = dataset.subset([0, 2, 4])
        assert len(subset) == 3
        assert subset.labels == [0, 0, 0]

    def test_subset_preserves_order(self, dataset):
        subset = dataset.subset([3, 1])
        assert subset.labels == [1, 1]
        assert subset[0] is dataset[3]

    def test_empty_subset_rejected(self, dataset):
        with pytest.raises(ValueError):
            dataset.subset([])


class TestUtilities:
    def test_statistics(self, dataset):
        stats = dataset.statistics()
        assert stats.num_graphs == len(dataset)
        assert stats.num_classes == 2

    def test_shuffled_preserves_content(self, dataset):
        shuffled = dataset.shuffled(rng=0)
        assert len(shuffled) == len(dataset)
        assert sorted(shuffled.labels) == sorted(dataset.labels)

    def test_shuffled_changes_order(self, dataset):
        shuffled = dataset.shuffled(rng=0)
        assert [id(g) for g in shuffled] != [id(g) for g in dataset]

    def test_shuffled_reproducible(self, dataset):
        first = dataset.shuffled(rng=3)
        second = dataset.shuffled(rng=3)
        assert [id(g) for g in first] == [id(g) for g in second]
