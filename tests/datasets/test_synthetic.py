"""Tests for the synthetic benchmark dataset generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    DATASET_SPECS,
    ClassArchetype,
    SyntheticDatasetSpec,
    make_all_benchmark_datasets,
    make_benchmark_dataset,
    make_scaling_dataset,
)


class TestSpecs:
    def test_all_six_paper_datasets_present(self):
        assert set(DATASET_SPECS) == {
            "DD",
            "ENZYMES",
            "MUTAG",
            "NCI1",
            "PROTEINS",
            "PTC_FM",
        }

    def test_table1_statistics_match_paper(self):
        # Graph counts, class counts and average sizes from Table I.
        assert DATASET_SPECS["DD"].num_graphs == 1178
        assert DATASET_SPECS["DD"].num_classes == 2
        assert DATASET_SPECS["ENZYMES"].num_classes == 6
        assert DATASET_SPECS["MUTAG"].num_graphs == 188
        assert DATASET_SPECS["NCI1"].num_graphs == 4110
        assert DATASET_SPECS["PROTEINS"].avg_vertices == pytest.approx(39.06)
        assert DATASET_SPECS["PTC_FM"].avg_edges == pytest.approx(14.48)

    def test_archetype_count_matches_classes(self):
        for spec in DATASET_SPECS.values():
            assert len(spec.archetypes) == spec.num_classes

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticDatasetSpec(
                name="BAD",
                num_graphs=10,
                num_classes=2,
                avg_vertices=10,
                avg_edges=10,
                archetypes=[ClassArchetype("tree")],
            )


class TestBenchmarkGeneration:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            make_benchmark_dataset("IMDB")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            make_benchmark_dataset("MUTAG", scale=0.0)

    def test_scaled_graph_count(self):
        dataset = make_benchmark_dataset("MUTAG", scale=0.5, seed=0)
        assert len(dataset) == pytest.approx(94, abs=1)

    def test_case_insensitive_name(self):
        dataset = make_benchmark_dataset("mutag", scale=0.2, seed=0)
        assert dataset.name == "MUTAG"

    def test_class_count_matches_spec(self):
        dataset = make_benchmark_dataset("ENZYMES", scale=0.2, seed=0)
        assert dataset.num_classes == 6

    def test_reproducible(self):
        first = make_benchmark_dataset("PTC_FM", scale=0.3, seed=5)
        second = make_benchmark_dataset("PTC_FM", scale=0.3, seed=5)
        assert [g.edges() for g in first] == [g.edges() for g in second]
        assert first.labels == second.labels

    def test_different_seeds_differ(self):
        first = make_benchmark_dataset("PTC_FM", scale=0.3, seed=1)
        second = make_benchmark_dataset("PTC_FM", scale=0.3, seed=2)
        assert [g.edges() for g in first] != [g.edges() for g in second]

    def test_average_vertices_close_to_table1(self):
        dataset = make_benchmark_dataset("PROTEINS", scale=0.3, seed=0)
        stats = dataset.statistics()
        spec = DATASET_SPECS["PROTEINS"]
        assert abs(stats.avg_vertices - spec.avg_vertices) / spec.avg_vertices < 0.35

    def test_average_edges_close_to_table1(self):
        dataset = make_benchmark_dataset("ENZYMES", scale=0.3, seed=0)
        stats = dataset.statistics()
        spec = DATASET_SPECS["ENZYMES"]
        assert abs(stats.avg_edges - spec.avg_edges) / spec.avg_edges < 0.6

    def test_classes_are_balanced(self):
        dataset = make_benchmark_dataset("MUTAG", scale=0.5, seed=0)
        counts = dataset.class_counts()
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_vertex_labels_assigned(self):
        dataset = make_benchmark_dataset("MUTAG", scale=0.2, seed=0)
        assert all(graph.vertex_labels is not None for graph in dataset)

    def test_graphs_have_edges(self):
        dataset = make_benchmark_dataset("NCI1", scale=0.02, seed=0)
        assert all(graph.num_edges > 0 for graph in dataset)

    def test_make_all(self):
        datasets = make_all_benchmark_datasets(scale=0.02, seed=0)
        assert set(datasets) == set(DATASET_SPECS)
        for name, dataset in datasets.items():
            assert dataset.name == name


class TestScalingDataset:
    def test_size_and_classes(self):
        dataset = make_scaling_dataset(50, num_graphs=40, seed=0)
        assert len(dataset) == 40
        assert dataset.num_classes == 2

    def test_classes_evenly_split(self):
        dataset = make_scaling_dataset(30, num_graphs=100, seed=0)
        counts = dataset.class_counts()
        assert counts[0] == counts[1] == 50

    def test_vertex_count(self):
        dataset = make_scaling_dataset(75, num_graphs=10, seed=0)
        assert all(graph.num_vertices == 75 for graph in dataset)

    def test_density_close_to_edge_probability(self):
        dataset = make_scaling_dataset(100, num_graphs=20, edge_probability=0.05, seed=0)
        stats = dataset.statistics()
        assert 0.02 < stats.avg_density < 0.09

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_scaling_dataset(0)
        with pytest.raises(ValueError):
            make_scaling_dataset(10, num_graphs=1)

    def test_reproducible(self):
        first = make_scaling_dataset(20, num_graphs=10, seed=3)
        second = make_scaling_dataset(20, num_graphs=10, seed=3)
        assert [g.edges() for g in first] == [g.edges() for g in second]
