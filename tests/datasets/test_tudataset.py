"""Tests for the TUDataset-format reader and writer."""

import os

import pytest

from repro.datasets.dataset import GraphDataset
from repro.datasets.synthetic import make_benchmark_dataset
from repro.datasets.tudataset import load_tudataset, save_tudataset
from repro.graphs.graph import Graph


@pytest.fixture
def labelled_dataset():
    graphs = [
        Graph(
            3,
            [(0, 1), (1, 2)],
            vertex_labels=[1, 2, 1],
            edge_labels={(0, 1): 0, (1, 2): 1},
            graph_label=1,
        ),
        Graph(
            4,
            [(0, 1), (1, 2), (2, 3), (3, 0)],
            vertex_labels=[2, 2, 1, 1],
            edge_labels={(0, 1): 1, (1, 2): 1, (2, 3): 0, (0, 3): 0},
            graph_label=2,
        ),
    ]
    return GraphDataset("TOY", graphs)


class TestRoundTrip:
    def test_roundtrip_preserves_structure(self, labelled_dataset, tmp_path):
        save_tudataset(labelled_dataset, str(tmp_path), "TOY")
        loaded = load_tudataset(str(tmp_path), "TOY")
        assert len(loaded) == len(labelled_dataset)
        for original, reloaded in zip(labelled_dataset, loaded):
            assert reloaded.num_vertices == original.num_vertices
            assert reloaded.edges() == original.edges()
            assert reloaded.vertex_labels == original.vertex_labels
            assert reloaded.edge_labels == original.edge_labels
            assert reloaded.graph_label == original.graph_label

    def test_roundtrip_without_labels(self, tmp_path):
        graphs = [
            Graph(3, [(0, 1), (1, 2)], graph_label=0),
            Graph(2, [(0, 1)], graph_label=1),
        ]
        dataset = GraphDataset("PLAIN", graphs)
        save_tudataset(dataset, str(tmp_path), "PLAIN")
        loaded = load_tudataset(str(tmp_path), "PLAIN")
        assert loaded[0].vertex_labels is None
        assert loaded[0].edge_labels is None
        assert [g.graph_label for g in loaded] == [0, 1]

    def test_roundtrip_synthetic_benchmark(self, tmp_path):
        dataset = make_benchmark_dataset("PTC_FM", scale=0.1, seed=0)
        save_tudataset(dataset, str(tmp_path), "PTC_FM")
        loaded = load_tudataset(str(tmp_path), "PTC_FM")
        assert len(loaded) == len(dataset)
        assert [g.num_edges for g in loaded] == [g.num_edges for g in dataset]

    def test_default_name_from_directory(self, labelled_dataset, tmp_path):
        directory = tmp_path / "TOY"
        directory.mkdir()
        save_tudataset(labelled_dataset, str(directory), "TOY")
        loaded = load_tudataset(str(directory))
        assert loaded.name == "TOY"


class TestWriter:
    def test_files_created(self, labelled_dataset, tmp_path):
        prefix = save_tudataset(labelled_dataset, str(tmp_path), "TOY")
        assert os.path.exists(f"{prefix}_A.txt")
        assert os.path.exists(f"{prefix}_graph_indicator.txt")
        assert os.path.exists(f"{prefix}_graph_labels.txt")
        assert os.path.exists(f"{prefix}_node_labels.txt")
        assert os.path.exists(f"{prefix}_edge_labels.txt")

    def test_adjacency_has_both_directions(self, labelled_dataset, tmp_path):
        prefix = save_tudataset(labelled_dataset, str(tmp_path), "TOY")
        with open(f"{prefix}_A.txt") as handle:
            lines = [line.strip() for line in handle if line.strip()]
        total_edges = sum(graph.num_edges for graph in labelled_dataset)
        assert len(lines) == 2 * total_edges

    def test_indicator_is_one_based(self, labelled_dataset, tmp_path):
        prefix = save_tudataset(labelled_dataset, str(tmp_path), "TOY")
        with open(f"{prefix}_graph_indicator.txt") as handle:
            values = [int(line) for line in handle if line.strip()]
        assert min(values) == 1
        assert max(values) == len(labelled_dataset)


class TestReaderErrors:
    def test_missing_files(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_tudataset(str(tmp_path), "MISSING")

    def test_cross_graph_edge_rejected(self, tmp_path):
        prefix = tmp_path / "BAD"
        (tmp_path / "BAD_A.txt").write_text("1, 3\n3, 1\n")
        (tmp_path / "BAD_graph_indicator.txt").write_text("1\n1\n2\n")
        (tmp_path / "BAD_graph_labels.txt").write_text("0\n1\n")
        with pytest.raises(ValueError):
            load_tudataset(str(tmp_path), "BAD")

    def test_node_label_count_mismatch_rejected(self, tmp_path):
        (tmp_path / "BAD_A.txt").write_text("1, 2\n2, 1\n")
        (tmp_path / "BAD_graph_indicator.txt").write_text("1\n1\n")
        (tmp_path / "BAD_graph_labels.txt").write_text("0\n")
        (tmp_path / "BAD_node_labels.txt").write_text("1\n")
        with pytest.raises(ValueError):
            load_tudataset(str(tmp_path), "BAD")

    def test_whitespace_separator_supported(self, tmp_path):
        (tmp_path / "WS_A.txt").write_text("1 2\n2 1\n")
        (tmp_path / "WS_graph_indicator.txt").write_text("1\n1\n")
        (tmp_path / "WS_graph_labels.txt").write_text("7\n")
        loaded = load_tudataset(str(tmp_path), "WS")
        assert loaded[0].num_edges == 1
        assert loaded[0].graph_label == 7
