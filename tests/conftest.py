"""Shared fixtures for the test suite.

Hypervector dimensions are kept small (a few hundred to a couple of thousand)
so the suite runs quickly; the statistical properties being tested only need
enough dimensions for concentration, not the full 10,000 of the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.dataset import GraphDataset
from repro.datasets.synthetic import make_benchmark_dataset
from repro.graphs.generators import erdos_renyi_graph, ring_of_cliques_graph, tree_graph
from repro.graphs.graph import Graph


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def triangle_graph() -> Graph:
    """The 3-cycle: the smallest graph with a cycle."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)], graph_label=0)


@pytest.fixture
def path_graph() -> Graph:
    """A path on five vertices."""
    return Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)], graph_label=1)


@pytest.fixture
def star_graph() -> Graph:
    """A star with one hub and five leaves."""
    return Graph(6, [(0, leaf) for leaf in range(1, 6)], graph_label=0)


@pytest.fixture
def labelled_graph() -> Graph:
    """A small graph carrying vertex and edge labels."""
    return Graph(
        4,
        [(0, 1), (1, 2), (2, 3), (3, 0)],
        vertex_labels=["C", "N", "C", "O"],
        edge_labels={(0, 1): 1, (1, 2): 2, (2, 3): 1, (0, 3): 1},
        graph_label=1,
    )


@pytest.fixture
def small_graph_collection() -> list[Graph]:
    """A mixed bag of small graphs used for kernel/encoder tests."""
    graphs = [
        Graph(3, [(0, 1), (1, 2), (0, 2)], graph_label=0),
        Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)], graph_label=1),
        Graph(6, [(0, leaf) for leaf in range(1, 6)], graph_label=0),
        Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)], graph_label=1),
        Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], graph_label=0),
        Graph(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)], graph_label=1),
    ]
    return graphs


@pytest.fixture
def two_class_dataset() -> GraphDataset:
    """A small, clearly separable two-class dataset (cliquey vs tree-like)."""
    rng = np.random.default_rng(7)
    graphs = []
    for index in range(30):
        if index % 2 == 0:
            graph = ring_of_cliques_graph(4, 4, rng=rng, graph_label=0)
        else:
            graph = tree_graph(16, max_children=2, rng=rng, graph_label=1)
        graphs.append(graph)
    return GraphDataset("toy-two-class", graphs)


@pytest.fixture
def random_graph_dataset() -> GraphDataset:
    """Erdős–Rényi graphs with a density contrast between two classes."""
    rng = np.random.default_rng(11)
    graphs = []
    for index in range(24):
        label = index % 2
        probability = 0.08 if label == 0 else 0.25
        graphs.append(
            erdos_renyi_graph(20, probability, rng=rng, graph_label=label)
        )
    return GraphDataset("toy-random", graphs)


@pytest.fixture(scope="session")
def mutag_like_dataset() -> GraphDataset:
    """A small synthetic MUTAG-style dataset shared across integration tests."""
    return make_benchmark_dataset("MUTAG", scale=0.35, seed=3)
